//! Exporters for the observability layer (DESIGN.md §10).
//!
//! Two formats, both hand-rolled JSON (the workspace takes no serde
//! dependency):
//!
//! * [`chrome_trace`] — chrome://tracing / Perfetto trace-event JSON.
//!   Each [`JoinResult`] becomes one "process"; tid 0 carries the phase
//!   bars, tid `w + 1` worker `w`'s spans, so the timeline shows the
//!   barrier structure and per-worker imbalance directly.
//! * [`metrics`] — a flat metrics document (one object per run, one per
//!   phase, one per worker span) for scripted consumption, with an
//!   optional caller-supplied `"meta"` block (host CPU model, kernel
//!   mode, counter availability — see the bench harness).
//!
//! Native counters that were unavailable are emitted as JSON `null`,
//! keeping the schema identical on hosts with and without PMU access.

use crate::plan::JoinError;
use crate::stats::{JoinResult, PhaseStat};

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the escaping rule every hand-rolled JSON artifact in the workspace
/// uses, public so the service layer's wire frames share it.
pub fn json_escape(s: &str) -> String {
    esc(s)
}

/// Wire-serializable form of a [`JoinError`]: an object carrying the
/// stable [`JoinError::code`] (the compatibility contract, DESIGN.md
/// §15), the human-readable rendering, and the failing phase when the
/// variant has one. `mmjoin-serve` embeds this verbatim in its error
/// frames, so clients can match on `code` instead of parsing prose.
pub fn error_json(e: &JoinError) -> String {
    let mut out = format!(
        "{{\"code\": \"{}\", \"message\": \"{}\"",
        e.code(),
        esc(&e.to_string())
    );
    if let Some(phase) = e.phase() {
        out.push_str(&format!(", \"phase\": \"{}\"", esc(phase)));
    }
    match e {
        JoinError::MemoryBudgetExceeded {
            requested,
            limit,
            available,
            ..
        } => out.push_str(&format!(
            ", \"requested\": {requested}, \"limit\": {limit}, \"available\": {available}"
        )),
        JoinError::Timedout { elapsed, .. } => out.push_str(&format!(
            ", \"elapsed_ms\": {:.3}",
            elapsed.as_secs_f64() * 1e3
        )),
        JoinError::InvalidConfig { field, value, .. } => {
            out.push_str(&format!(
                ", \"field\": \"{}\", \"value\": {value}",
                esc(field)
            ));
        }
        JoinError::PipelineUnsupported { algorithm }
        | JoinError::DomainExceeded { algorithm, .. } => {
            out.push_str(&format!(", \"algorithm\": \"{algorithm}\""));
        }
        _ => {}
    }
    out.push('}');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `Some(v)` → `v`, `None` → `null`.
fn opt(v: Option<u64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  ");
    out.push_str(body);
}

/// `[ts, end)` of a phase bar in ns since recording start: span extents
/// when profiling recorded any, else synthesized sequentially from
/// `cursor_ns` (profiling off still yields a readable trace).
fn phase_extent(p: &PhaseStat, cursor_ns: u64) -> (u64, u64) {
    let starts = p.workers.iter().map(|w| w.start_ns).min();
    match starts {
        Some(ts) => {
            let end = p
                .workers
                .iter()
                .map(|w| w.start_ns + w.dur_ns)
                .max()
                .unwrap_or(ts);
            (ts, end.max(ts))
        }
        None => (cursor_ns, cursor_ns + p.wall.as_nanos() as u64),
    }
}

fn counters_json(p: &PhaseStat) -> String {
    let t = p.counter_totals();
    format!(
        "\"cycles\": {}, \"instructions\": {}, \"llc_misses\": {}, \
         \"dtlb_misses\": {}, \"task_clock_ns\": {}",
        opt(t.cycles),
        opt(t.instructions),
        opt(t.llc_misses),
        opt(t.dtlb_misses),
        opt(t.task_clock_ns)
    )
}

fn spill_json(p: &PhaseStat) -> String {
    format!(
        "\"bytes_spilled\": {}, \"partitions_spilled\": {}, \"spill_recursion_depth\": {}",
        p.spill.bytes_spilled, p.spill.partitions_spilled, p.spill.recursion_depth
    )
}

fn alloc_json(p: &PhaseStat) -> String {
    let a = &p.alloc;
    format!(
        "\"alloc\": {{\"mapped_blocks\": {}, \"mapped_bytes\": {}, \"pool_hits\": {}, \
         \"pool_hit_bytes\": {}, \"degraded_page\": {}, \"degraded_numa\": {}, \
         \"heap_fallback\": {}}}",
        a.mapped_blocks,
        a.mapped_bytes,
        a.pool_hits,
        a.pool_hit_bytes,
        a.degraded_page,
        a.degraded_numa,
        a.heap_fallback
    )
}

/// Render `results` as chrome://tracing trace-event JSON (the "JSON
/// array format"; load via chrome://tracing "Load" or ui.perfetto.dev).
/// Timestamps are microseconds since each run's recording start.
pub fn chrome_trace(results: &[JoinResult]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for (i, r) in results.iter().enumerate() {
        let pid = i + 1;
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                esc(r.algorithm.name())
            ),
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"phases\"}}}}"
            ),
        );
        let workers = r
            .phases
            .iter()
            .flat_map(|p| p.workers.iter())
            .map(|w| w.worker + 1)
            .max()
            .unwrap_or(0);
        for w in 0..workers {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \
                     \"tid\": {}, \"args\": {{\"name\": \"worker {w}\"}}}}",
                    w + 1
                ),
            );
        }
        let mut cursor_ns = 0u64;
        for p in &r.phases {
            let (ts, end) = phase_extent(p, cursor_ns);
            cursor_ns = end;
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                     \"pid\": {pid}, \"tid\": 0, \"args\": {{\"wall_ms\": {:.3}, \
                     \"sim_ms\": {:.3}, \"tasks\": {}, \"steals\": {}, \"idle_ms\": {:.3}, \
                     {}, {}, {}}}}}",
                    esc(p.name),
                    ts as f64 / 1e3,
                    (end - ts) as f64 / 1e3,
                    p.wall.as_secs_f64() * 1e3,
                    p.sim_seconds * 1e3,
                    p.exec.tasks,
                    p.exec.steals,
                    p.exec.idle_ns as f64 / 1e6,
                    spill_json(p),
                    alloc_json(p),
                    counters_json(p)
                ),
            );
            for w in &p.workers {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                         \"pid\": {pid}, \"tid\": {}, \"args\": {{\"tasks\": {}, \
                         \"steals\": {}, \"cycles\": {}, \"instructions\": {}, \
                         \"llc_misses\": {}, \"dtlb_misses\": {}, \"task_clock_ns\": {}}}}}",
                        esc(p.name),
                        w.start_ns as f64 / 1e3,
                        w.dur_ns as f64 / 1e3,
                        w.worker + 1,
                        w.tasks,
                        w.steals,
                        opt(w.counters.cycles),
                        opt(w.counters.instructions),
                        opt(w.counters.llc_misses),
                        opt(w.counters.dtlb_misses),
                        opt(w.counters.task_clock_ns)
                    ),
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// One chrome-trace metadata event (`"ph": "M"`): `kind` is
/// `"process_name"` or `"thread_name"`. The service's flight recorder
/// composes its `trace` op output from these plus
/// [`trace_complete_event`], so live traces and offline
/// [`chrome_trace`] dumps load in the same viewer.
pub fn trace_name_event(kind: &str, pid: u64, tid: u64, name: &str) -> String {
    format!(
        "{{\"name\": \"{}\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}}",
        esc(kind),
        esc(name)
    )
}

/// One chrome-trace complete event (`"ph": "X"`). `ts_us`/`dur_us` are
/// microseconds; `args_json` must be a well-formed JSON object.
pub fn trace_complete_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args_json: &str,
) -> String {
    format!(
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {ts_us:.3}, \
         \"dur\": {dur_us:.3}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {args_json}}}",
        esc(name),
        esc(cat)
    )
}

/// Compact rollup of one [`PhaseStat`] for per-query records: wall
/// time, executor counters, spill/alloc counters, and the worker-summed
/// perf counter deltas (`null` where unavailable) — everything except
/// the per-worker span vector, which is too heavy to retain per query.
pub fn phase_rollup_json(p: &PhaseStat) -> String {
    format!(
        "{{\"name\": \"{}\", \"wall_ms\": {:.3}, \"tasks\": {}, \"steals\": {}, \
         \"idle_ms\": {:.3}, {}, {}, {}}}",
        esc(p.name),
        p.wall.as_secs_f64() * 1e3,
        p.exec.tasks,
        p.exec.steals,
        p.exec.idle_ns as f64 / 1e6,
        spill_json(p),
        alloc_json(p),
        counters_json(p)
    )
}

fn phase_json(p: &PhaseStat) -> String {
    let workers: Vec<String> = p
        .workers
        .iter()
        .map(|w| {
            format!(
                "{{\"worker\": {}, \"start_us\": {:.3}, \"dur_us\": {:.3}, \
                 \"tasks\": {}, \"steals\": {}, \"cycles\": {}, \"instructions\": {}, \
                 \"llc_misses\": {}, \"dtlb_misses\": {}, \"task_clock_ns\": {}}}",
                w.worker,
                w.start_ns as f64 / 1e3,
                w.dur_ns as f64 / 1e3,
                w.tasks,
                w.steals,
                opt(w.counters.cycles),
                opt(w.counters.instructions),
                opt(w.counters.llc_misses),
                opt(w.counters.dtlb_misses),
                opt(w.counters.task_clock_ns)
            )
        })
        .collect();
    format!(
        "{{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_ms\": {:.3}, \"tasks\": {}, \
         \"steals\": {}, \"idle_ms\": {:.3}, {}, {}, {}, \"workers\": [{}]}}",
        esc(p.name),
        p.wall.as_secs_f64() * 1e3,
        p.sim_seconds * 1e3,
        p.exec.tasks,
        p.exec.steals,
        p.exec.idle_ns as f64 / 1e6,
        spill_json(p),
        alloc_json(p),
        counters_json(p),
        workers.join(", ")
    )
}

fn run_json(r: &JoinResult) -> String {
    let radix = match r.radix_bits {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    let phases: Vec<String> = r.phases.iter().map(phase_json).collect();
    format!(
        "{{\"algorithm\": \"{}\", \"matches\": {}, \"checksum\": \"{:#018x}\", \
         \"radix_bits\": {radix}, \"total_wall_ms\": {:.3}, \"phases\": [{}]}}",
        esc(r.algorithm.name()),
        r.matches,
        r.checksum,
        r.total_wall().as_secs_f64() * 1e3,
        phases.join(", ")
    )
}

/// Render `results` as a flat metrics document:
/// `{"meta": ..., "runs": [...]}`. `meta_json`, when given, must be a
/// well-formed JSON value (the bench harness's host-metadata block); it
/// is `null` otherwise. The checksum is a hex *string* — as a JSON
/// number it would exceed the 2^53 integer precision most parsers keep.
pub fn metrics(results: &[JoinResult], meta_json: Option<&str>) -> String {
    let runs: Vec<String> = results.iter().map(run_json).collect();
    format!(
        "{{\n  \"meta\": {},\n  \"runs\": [\n    {}\n  ]\n}}\n",
        meta_json.unwrap_or("null"),
        runs.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use mmjoin_util::perf::CounterDelta;
    use mmjoin_util::pool::{ExecCounters, WorkerPhaseStat};
    use std::time::Duration;

    fn sample() -> JoinResult {
        let mut r = JoinResult::new(Algorithm::Pro);
        r.matches = 42;
        r.checksum = u64::MAX;
        r.radix_bits = Some(11);
        r.phases.push(PhaseStat {
            name: "partition",
            wall: Duration::from_millis(3),
            sim_seconds: 0.001,
            exec: ExecCounters {
                tasks: 2,
                steals: 1,
                idle_ns: 500,
            },
            spill: crate::stats::SpillCounters {
                bytes_spilled: 4096,
                partitions_spilled: 1,
                recursion_depth: 0,
            },
            alloc: crate::stats::AllocCounters {
                mapped_blocks: 2,
                mapped_bytes: 1 << 21,
                ..Default::default()
            },
            workers: vec![
                WorkerPhaseStat {
                    worker: 0,
                    start_ns: 1_000,
                    dur_ns: 2_000,
                    tasks: 1,
                    steals: 0,
                    counters: CounterDelta {
                        cycles: Some(123),
                        ..CounterDelta::none()
                    },
                },
                WorkerPhaseStat {
                    worker: 1,
                    start_ns: 1_000,
                    dur_ns: 1_500,
                    tasks: 1,
                    steals: 1,
                    counters: CounterDelta::none(),
                },
            ],
        });
        r.push_phase("join", Duration::from_millis(5), 0.002);
        r
    }

    #[test]
    fn chrome_trace_structure() {
        let t = chrome_trace(&[sample()]);
        assert!(t.starts_with("[\n"));
        assert!(t.trim_end().ends_with(']'));
        assert!(t.contains("\"process_name\""));
        assert!(t.contains("\"name\": \"PRO\""));
        assert!(t.contains("\"worker 1\""));
        // Phase bar + two worker spans for "partition".
        assert_eq!(t.matches("\"name\": \"partition\"").count(), 3);
        // Unprofiled phase still gets a bar, synthesized sequentially.
        assert_eq!(t.matches("\"name\": \"join\"").count(), 1);
        // Unavailable counters are null, not absent.
        assert!(t.contains("\"cycles\": null"));
        assert!(t.contains("\"cycles\": 123"));
        // Braces and brackets balance (cheap well-formedness check; the
        // profile bin's validator does the real parse).
        assert_eq!(t.matches('{').count(), t.matches('}').count());
        assert_eq!(t.matches('[').count(), t.matches(']').count());
    }

    #[test]
    fn metrics_structure() {
        let m = metrics(&[sample()], Some("{\"cpu_model\": \"test\"}"));
        assert!(m.contains("\"meta\": {\"cpu_model\": \"test\"}"));
        assert!(m.contains("\"algorithm\": \"PRO\""));
        assert!(m.contains("\"checksum\": \"0xffffffffffffffff\""));
        assert!(m.contains("\"radix_bits\": 11"));
        assert!(m.contains("\"bytes_spilled\": 4096"));
        assert!(m.contains("\"partitions_spilled\": 1"));
        assert!(m.contains("\"spill_recursion_depth\": 0"));
        assert!(m.contains("\"alloc\": {\"mapped_blocks\": 2, \"mapped_bytes\": 2097152"));
        assert!(m.contains("\"workers\": []"));
        assert_eq!(m.matches('{').count(), m.matches('}').count());
        let no_meta = metrics(&[], None);
        assert!(no_meta.contains("\"meta\": null"));
        assert!(no_meta.contains("\"runs\": ["));
    }

    #[test]
    fn phase_extent_synthesis() {
        let r = sample();
        // Profiled phase: extent from spans.
        let (ts, end) = phase_extent(&r.phases[0], 0);
        assert_eq!(ts, 1_000);
        assert_eq!(end, 3_000);
        // Unprofiled phase: sequential from the cursor.
        let (ts, end) = phase_extent(&r.phases[1], 3_000);
        assert_eq!(ts, 3_000);
        assert_eq!(end, 3_000 + 5_000_000);
    }

    #[test]
    fn event_builders_match_chrome_trace_shapes() {
        let m = trace_name_event("thread_name", 1, 3, "tenant \"a\"");
        assert!(m.contains("\"ph\": \"M\""));
        assert!(m.contains("\"tid\": 3"));
        assert!(m.contains("tenant \\\"a\\\""));
        let x = trace_complete_event("PRO", "join", 1, 2, 10.5, 2000.0, "{\"cached\": true}");
        assert!(x.contains("\"ph\": \"X\""));
        assert!(x.contains("\"ts\": 10.500"));
        assert!(x.contains("\"args\": {\"cached\": true}"));
        let r = sample();
        let j = phase_rollup_json(&r.phases[0]);
        assert!(j.contains("\"name\": \"partition\""));
        assert!(j.contains("\"bytes_spilled\": 4096"));
        assert!(j.contains("\"cycles\": 123"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
