//! PRB — the basic two-pass parallel radix join (Balkesen et al., as
//! shipped: no software write-combine buffers, no streaming stores).
//!
//! Two passes of 7 bits each keep the per-pass fanout (128) under the
//! 4 KB-page TLB capacity (256 entries) — which is also why PRB is the
//! one algorithm that gets *slower* with 2 MB pages and their 32 TLB
//! entries (Figure 8).

use std::time::Instant;

use mmjoin_partition::{task_order, two_pass_partition_on, ScatterMode, ScheduleOrder};
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::Relation;

use crate::config::{JoinConfig, TableKind};
use crate::exec::join_morsels;
use crate::executor::QueuePolicy;
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::JoinError;
use crate::pro::{join_co_partition, spec_for, table_bytes_per_tuple, table_cpu};
use crate::spec::{self, PartitionLayout, PartitionWrites};
use crate::stats::JoinResult;
use crate::Algorithm;

/// Default PRB configuration: 2 × 7 bits.
const PRB_DEFAULT_BITS: u32 = 14;

/// PRB: two-pass radix partitioning (direct scatter), chained tables,
/// sequential task order.
pub fn join_prb(r: &Relation, s: &Relation, cfg: &JoinConfig) -> Result<JoinResult, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Prb, cfg);
    let mut result = JoinResult::new(Algorithm::Prb);
    let total_bits = cfg.radix_bits.unwrap_or(PRB_DEFAULT_BITS).max(2);
    let bits1 = total_bits / 2;
    let bits2 = total_bits - bits1;
    result.radix_bits = Some(total_bits);
    let parts = 1usize << total_bits;
    let kind = TableKind::Chained;
    let domain = cfg.domain(r.len());

    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    // Partition phase: two passes, no SWWCB.
    ctx.enter_phase("partition");
    // Two passes each materialize a full copy of both inputs (8 B/tuple);
    // the pass-1 output is dropped when pass 2 completes, so charge the
    // peak: two live copies.
    let _part_charge = ctx.charge(2 * (r.len() + s.len()) * 8)?;
    let start = Instant::now();
    let pr = two_pass_partition_on(r.tuples(), bits1, bits2, &cpool, ScatterMode::Direct);
    let ps = two_pass_partition_on(s.tuples(), bits1, bits2, &cpool, ScatterMode::Direct);
    let part_wall = start.elapsed();
    let mut part_sim = 0.0;
    for (rel, len) in [(r, r.len()), (s, s.len())] {
        for pass_bits in [bits1, bits2] {
            let specs = spec::partition_pass_specs(
                cfg,
                len,
                rel.placement(),
                1usize << pass_bits,
                false,
                PartitionWrites::GlobalInterleaved,
            );
            let order: Vec<usize> = (0..specs.len()).collect();
            part_sim += spec::run_phase(cfg, &specs, &order).0;
        }
    }
    result.push_phase_pool("partition", part_wall, part_sim, &pool);
    ctx.checkpoint(&result)?;

    // Join phase.
    ctx.enter_phase("join");
    let order = task_order(parts, ScheduleOrder::Sequential);
    let start = Instant::now();
    let checksum: JoinChecksum = join_morsels(&pool, &order, parts, QueuePolicy::Shared, |p| {
        let mut c = JoinChecksum::new();
        if ctx.tick() {
            return c;
        }
        let spec = spec_for(kind, total_bits, domain, pr.part_len(p));
        let _table_charge = match ctx.try_charge(spec.table_bytes()) {
            Some(charge) => charge,
            None => return c,
        };
        join_co_partition(
            kind,
            &spec,
            cfg.unique_build_keys,
            &mut std::iter::once(pr.partition(p)),
            &mut std::iter::once(ps.partition(p)),
            &mut c,
        );
        c
    });
    let join_wall = start.elapsed();
    result.set_checksum(checksum);

    let r_sizes: Vec<usize> = (0..parts).map(|p| pr.part_len(p)).collect();
    let s_sizes: Vec<usize> = (0..parts).map(|p| ps.part_len(p)).collect();
    let (cpu_build, cpu_probe) = table_cpu(kind);
    let tasks = spec::join_task_specs(
        cfg,
        &r_sizes,
        &s_sizes,
        PartitionLayout::Contiguous,
        cpu_build,
        cpu_probe,
        table_bytes_per_tuple(kind, domain, total_bits, r.len()),
    );
    let (join_sim, sim) = spec::run_phase(cfg, &tasks, &order);
    result.push_phase_pool("join", join_wall, join_sim, &pool);
    if cfg.keep_timelines {
        result.timelines.push(("join", sim));
    }
    ctx.checkpoint(&result)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
    use mmjoin_util::Placement;

    #[test]
    fn prb_matches_reference() {
        let n = 5_000;
        let r = gen_build_dense(n, 11, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(n * 4, n, 12, Placement::Chunked { parts: 4 });
        let expect = reference_join(&r, &s);
        for threads in [1, 4] {
            let mut cfg = JoinConfig::new(threads);
            cfg.simulate = false;
            cfg.radix_bits = Some(8);
            let res = join_prb(&r, &s, &cfg).unwrap();
            assert_eq!(res.matches, expect.count, "threads={threads}");
            assert_eq!(res.checksum, expect.digest);
        }
    }

    #[test]
    fn default_bits_is_fourteen() {
        let r = gen_build_dense(500, 1, Placement::Interleaved);
        let s = gen_probe_fk(500, 500, 2, Placement::Interleaved);
        let mut cfg = JoinConfig::new(2);
        cfg.simulate = false;
        let res = join_prb(&r, &s, &cfg).unwrap();
        assert_eq!(res.radix_bits, Some(14));
    }

    #[test]
    fn odd_total_bits_split() {
        let r = gen_build_dense(1_000, 3, Placement::Interleaved);
        let s = gen_probe_fk(2_000, 1_000, 4, Placement::Interleaved);
        let expect = reference_join(&r, &s);
        let mut cfg = JoinConfig::new(2);
        cfg.simulate = false;
        cfg.radix_bits = Some(7); // 3 + 4
        let res = join_prb(&r, &s, &cfg).unwrap();
        assert_eq!(res.matches, expect.count);
        assert_eq!(res.checksum, expect.digest);
    }
}
