//! CHTJ — the concise-hash-table join (Barber et al.).
//!
//! Classified as a no-partitioning join (Section 3.2): the build side is
//! partitioned by hash prefix only so threads can bulkload disjoint CHT
//! regions without synchronization; the probe phase is chunk-parallel
//! against the one global (read-only) CHT, exactly like NOP.

use std::time::Instant;

use mmjoin_hashtable::ConciseHashTable;
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::Relation;

use crate::config::JoinConfig;
use crate::exec::{merge_checksums, parallel_chunks, MORSEL};
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::JoinError;
use crate::spec::{self, ops};
use crate::stats::JoinResult;
use crate::Algorithm;

/// CHTJ: bulkloaded concise hash table + chunk-parallel probe.
pub fn join_chtj(r: &Relation, s: &Relation, cfg: &JoinConfig) -> Result<JoinResult, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Chtj, cfg);
    let mut result = JoinResult::new(Algorithm::Chtj);
    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    // Build (region-parallel bulkload inside).
    ctx.enter_phase("build");
    // CHT footprint: bitmap word + dense tuple array, ~16 B per build
    // tuple.
    let _table_charge = ctx.charge(r.len() * 16)?;
    let start = Instant::now();
    let cht =
        ConciseHashTable::<mmjoin_hashtable::MultiplicativeHash>::build_on(r.tuples(), &cpool);
    let build_wall = start.elapsed();
    let table_bytes = cht.memory_bytes() as f64;
    // Build = scan + radix scatter by hash prefix + bulkload writes.
    let build_specs =
        spec::global_build_specs(cfg, r.len(), r.placement(), table_bytes, ops::BUILD + 2.0);
    let order: Vec<usize> = (0..build_specs.len()).collect();
    let (build_sim, _) = spec::run_phase(cfg, &build_specs, &order);
    result.push_phase_pool("build", build_wall, build_sim, &pool);
    ctx.checkpoint(&result)?;

    // Probe: every lookup touches the bitmap word *and* the dense array —
    // the "at least two random accesses for every operation" that makes
    // CHTJ the most data-size-sensitive NOP*-algorithm (Section 7.3,
    // Table 4).
    ctx.enter_phase("probe");
    let start = Instant::now();
    let checksums = parallel_chunks(&cpool, s.tuples(), |_, chunk| {
        let mut c = JoinChecksum::new();
        for block in chunk.chunks(MORSEL) {
            if ctx.should_stop() {
                return c;
            }
            cht.probe_batch(block, |t, bp| c.add(t.key, bp, t.payload));
        }
        c
    });
    let probe_wall = start.elapsed();
    result.set_checksum(merge_checksums(checksums));
    let probe_specs = spec::global_probe_specs(
        cfg,
        s.len(),
        s.placement(),
        table_bytes,
        2.0,
        ops::CHT_PROBE,
    );
    let order: Vec<usize> = (0..probe_specs.len()).collect();
    let (probe_sim, _) = spec::run_phase(cfg, &probe_specs, &order);
    result.push_phase_pool("probe", probe_wall, probe_sim, &pool);
    ctx.checkpoint(&result)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk, gen_probe_zipf};
    use mmjoin_util::Placement;

    #[test]
    fn chtj_matches_reference() {
        let n = 5_000;
        let r = gen_build_dense(n, 21, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(20_000, n, 22, Placement::Chunked { parts: 4 });
        let expect = reference_join(&r, &s);
        for threads in [1, 4, 8] {
            let mut cfg = JoinConfig::new(threads);
            cfg.simulate = false;
            let res = join_chtj(&r, &s, &cfg).unwrap();
            assert_eq!(res.matches, expect.count, "threads={threads}");
            assert_eq!(res.checksum, expect.digest);
        }
    }

    #[test]
    fn chtj_skewed_probe() {
        let n = 2_000;
        let r = gen_build_dense(n, 23, Placement::Interleaved);
        let s = gen_probe_zipf(10_000, n, 0.9, 24, Placement::Interleaved);
        let expect = reference_join(&r, &s);
        let mut cfg = JoinConfig::new(4);
        cfg.simulate = false;
        let res = join_chtj(&r, &s, &cfg).unwrap();
        assert_eq!(res.matches, expect.count);
        assert_eq!(res.checksum, expect.digest);
    }
}
