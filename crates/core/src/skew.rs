//! Skew handling: cooperative processing of oversized co-partitions.
//!
//! The paper's partitioned joins handle skew only through task-queue
//! load balancing and note the limitation explicitly (Appendix A: "We do
//! not exploit the possibility to use multiple threads to process the
//! join on the largest partitions in parallel"). This module implements
//! that missing mechanism as an opt-in extension
//! ([`crate::JoinConfig::skew_handling`]):
//!
//! 1. after partitioning, co-partitions whose *probe* side exceeds
//!    [`SKEW_FACTOR`] × the average are classified as skewed;
//! 2. normal partitions run through the task queue as usual;
//! 3. each skewed partition is then processed cooperatively: one build
//!    of its table, all threads probing disjoint ranges of its probe
//!    side (the build table is read-only during probing, so sharing is
//!    free).
//!
//! The `repro skewfix` experiment ablates this against the paper's
//! baseline on the Zipf workloads of Figure 15.

use mmjoin_hashtable::TableSpec;
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::chunk_range;
use mmjoin_util::pool::{broadcast_map, WorkerPool};
use mmjoin_util::tuple::Tuple;

use crate::config::{JoinConfig, TableKind};
use crate::exec::merge_checksums;
use crate::pro::join_co_partition;

/// A partition is "skewed" when its probe side exceeds this multiple of
/// the average probe partition size (and is worth splitting at all).
pub const SKEW_FACTOR: f64 = 4.0;

/// Split partition ids into (normal, skewed) by probe-side size.
pub fn classify_partitions(s_sizes: &[usize], threads: usize) -> (Vec<usize>, Vec<usize>) {
    let total: usize = s_sizes.iter().sum();
    let parts = s_sizes.len().max(1);
    let avg = total as f64 / parts as f64;
    // Splitting pays off only when one partition can stall the queue:
    // more than SKEW_FACTOR × average AND a meaningful share of a
    // thread's fair share of all work.
    let fair_share = total as f64 / threads.max(1) as f64;
    let threshold = (avg * SKEW_FACTOR).max(fair_share * 0.5).max(1.0);
    let mut normal = Vec::new();
    let mut skewed = Vec::new();
    for (p, &s) in s_sizes.iter().enumerate() {
        if (s as f64) > threshold {
            skewed.push(p);
        } else {
            normal.push(p);
        }
    }
    (normal, skewed)
}

/// Cooperatively join one skewed co-partition: single build, then all
/// threads probe disjoint chunks. `r_slices`/`s_slices` are the chunked
/// (or single) slices of the partition's build and probe sides.
pub fn join_skewed_partition(
    cfg: &JoinConfig,
    kind: TableKind,
    spec: &TableSpec,
    r_slices: &[&[Tuple]],
    s_slices: &[&[Tuple]],
) -> JoinChecksum {
    // Flatten the probe side into per-thread ranges over the slice list.
    let total_probe: usize = s_slices.iter().map(|s| s.len()).sum();
    let pool = cfg.executor();
    let threads = pool.workers().clamp(1, total_probe.max(1));

    // Build once (single-threaded: skewed partitions have an ordinary-
    // sized build side — the skew is in the probe keys).
    // Table kinds are Sync, so sharing it read-only across the probing
    // workers below is safe; the pool's barrier publishes the build.
    use mmjoin_hashtable::{ArrayTable, IdentityHash, JoinTable, StChainedTable, StLinearTable};
    macro_rules! run_with {
        ($ty:ty) => {{
            let mut table = <$ty>::with_spec(spec);
            for slice in r_slices {
                for &t in *slice {
                    table.insert(t);
                }
            }
            let table = &table;
            let parts: Vec<JoinChecksum> = broadcast_map(pool.as_ref(), threads, |t| {
                let range = chunk_range(total_probe, threads, t);
                let mut c = JoinChecksum::new();
                // Walk the slice list, probing only the global
                // positions inside `range`.
                let mut pos = 0usize;
                for slice in s_slices {
                    let end = pos + slice.len();
                    if end > range.start && pos < range.end {
                        let lo = range.start.max(pos) - pos;
                        let hi = range.end.min(end) - pos;
                        if cfg.unique_build_keys {
                            for &tu in &slice[lo..hi] {
                                table.probe_unique(tu.key, |bp| c.add(tu.key, bp, tu.payload));
                            }
                        } else {
                            for &tu in &slice[lo..hi] {
                                table.probe(tu.key, |bp| c.add(tu.key, bp, tu.payload));
                            }
                        }
                    }
                    pos = end;
                    if pos >= range.end {
                        break;
                    }
                }
                c
            });
            merge_checksums(parts)
        }};
    }
    match kind {
        TableKind::Chained => run_with!(StChainedTable<IdentityHash>),
        TableKind::Linear => run_with!(StLinearTable<IdentityHash>),
        TableKind::Array => run_with!(ArrayTable),
    }
}

/// Fallback single-threaded processing for a (mis)classified partition,
/// used by callers when cooperative probing is not worth spawning for.
pub fn join_partition_serial(
    kind: TableKind,
    spec: &TableSpec,
    r_slices: &[&[Tuple]],
    s_slices: &[&[Tuple]],
) -> JoinChecksum {
    let mut c = JoinChecksum::new();
    join_co_partition(
        kind,
        spec,
        false,
        &mut r_slices.iter().copied(),
        &mut s_slices.iter().copied(),
        &mut c,
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::tuple::Tuple;

    #[test]
    fn classification_finds_the_heavy_partition() {
        let mut sizes = vec![100usize; 64];
        sizes[17] = 100_000;
        let (normal, skewed) = classify_partitions(&sizes, 8);
        assert_eq!(skewed, vec![17]);
        assert_eq!(normal.len(), 63);
    }

    #[test]
    fn uniform_sizes_have_no_skew() {
        let sizes = vec![1_000usize; 64];
        let (normal, skewed) = classify_partitions(&sizes, 8);
        assert!(skewed.is_empty());
        assert_eq!(normal.len(), 64);
    }

    #[test]
    fn empty_and_tiny() {
        let (n, s) = classify_partitions(&[], 4);
        assert!(n.is_empty() && s.is_empty());
        let (n, s) = classify_partitions(&[5], 4);
        assert_eq!(n, vec![0]);
        assert!(s.is_empty());
    }

    #[test]
    fn cooperative_join_matches_serial() {
        let cfg = JoinConfig::new(4);
        let build: Vec<Tuple> = (1..=100u32).map(|k| Tuple::new(k, k)).collect();
        let probe: Vec<Tuple> = (0..10_000u32).map(|i| Tuple::new(i % 100 + 1, i)).collect();
        // Split both sides into uneven slices to exercise the walker.
        let r_slices: Vec<&[Tuple]> = vec![&build[..30], &build[30..]];
        let s_slices: Vec<&[Tuple]> = vec![&probe[..1], &probe[1..5000], &probe[5000..]];
        let spec = TableSpec::hashed(build.len());
        for kind in [TableKind::Chained, TableKind::Linear] {
            let coop = join_skewed_partition(&cfg, kind, &spec, &r_slices, &s_slices);
            let serial = join_partition_serial(kind, &spec, &r_slices, &s_slices);
            assert_eq!(coop, serial, "{kind:?}");
            assert_eq!(coop.count, 10_000);
        }
    }

    #[test]
    fn cooperative_join_with_array_table() {
        let cfg = JoinConfig::new(3);
        let build: Vec<Tuple> = (1..=50u32).map(|k| Tuple::new(k, k + 7)).collect();
        let probe: Vec<Tuple> = (0..5_000u32).map(|i| Tuple::new(i % 50 + 1, i)).collect();
        let r_slices: Vec<&[Tuple]> = vec![&build];
        let s_slices: Vec<&[Tuple]> = vec![&probe];
        let spec = TableSpec::array(0, 51);
        let coop = join_skewed_partition(&cfg, TableKind::Array, &spec, &r_slices, &s_slices);
        assert_eq!(coop.count, 5_000);
    }
}
