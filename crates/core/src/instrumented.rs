//! Instrumented single-threaded join kernels for the performance-counter
//! study (Table 4, and the mechanism behind Figure 8).
//!
//! Each algorithm's two reported phases ("sort or build or partition" and
//! "probe or join") are replayed single-threadedly with every memory
//! access fed into the `mmjoin-memsim` cache/TLB simulator. Inputs are
//! scaled down together with the simulated cache capacities, so the
//! capacity-relative behaviour (the source of every qualitative claim in
//! Table 4) is preserved.
//!
//! Fidelity note: the build structures are the *real* tables of this
//! crate — addresses come from their actual allocations — and the access
//! sequence is the algorithms' real access sequence. What is simplified
//! is concurrency (one thread) and, for CHT, the bulkload's scatter
//! (replayed as its address pattern rather than by re-running the
//! region-parallel builder).

use mmjoin_hashtable::{ArrayTable, IdentityHash, StChainedTable, StLinearTable};
use mmjoin_memsim::{Counters, MemSim};
use mmjoin_partition::{histogram::histogram, RadixFn};
use mmjoin_util::trace::MemTracer;
use mmjoin_util::tuple::Tuple;
use mmjoin_util::{Relation, CACHE_LINE, TUPLES_PER_CACHELINE};

use crate::config::TableKind;
use crate::Algorithm;

/// Counters of the two phases Table 4 reports.
#[derive(Clone, Debug)]
pub struct InstrumentedRun {
    pub algorithm: Algorithm,
    /// "Sort or Build or Partition Phase".
    pub first: Counters,
    /// "Probe or Join Phase".
    pub second: Counters,
    /// Number of produced matches (correctness cross-check).
    pub matches: u64,
}

/// Page configuration for an instrumented run.
#[derive(Copy, Clone, Debug)]
pub struct PageConfig {
    pub page_bytes: usize,
    pub tlb_entries: usize,
}

impl PageConfig {
    /// 4 KB pages / 256 entries, scaled.
    pub fn small(scale: usize) -> Self {
        PageConfig {
            page_bytes: (4096 / scale.max(1)).max(4 * CACHE_LINE),
            tlb_entries: 256,
        }
    }

    /// 2 MB pages / 32 entries, scaled.
    pub fn huge(scale: usize) -> Self {
        PageConfig {
            page_bytes: (2 * 1024 * 1024 / scale.max(1)).max(16 * CACHE_LINE),
            tlb_entries: 32,
        }
    }
}

fn sim(scale: usize, page: PageConfig) -> MemSim {
    MemSim::scaled_paper_machine(scale, page.page_bytes, page.tlb_entries)
}

/// Traced single-threaded radix scatter of `input` into a fresh buffer
/// (with or without SWWCB), returning the partitioned output.
fn traced_scatter(
    input: &[Tuple],
    f: RadixFn,
    swwcb: bool,
    tr: &mut impl MemTracer,
) -> (Vec<Tuple>, Vec<usize>) {
    // Histogram pass.
    for t in input {
        tr.read(t as *const Tuple as usize, 8);
        tr.ops(2);
    }
    let hist = histogram(input, f);
    let mut offsets = vec![0usize; f.fanout() + 1];
    for p in 0..f.fanout() {
        offsets[p + 1] = offsets[p] + hist[p];
    }
    // Scatter pass.
    let mut out = vec![Tuple::new(0, 0); input.len()];
    let mut cursor: Vec<usize> = offsets[..f.fanout()].to_vec();
    if swwcb {
        // Buffered: tuple writes land in the (cache-resident) buffer
        // bank; every TUPLES_PER_CACHELINE-th write flushes a line.
        let bank = vec![0u8; f.fanout() * CACHE_LINE];
        let mut fill = vec![0u8; f.fanout()];
        for t in input {
            tr.read(t as *const Tuple as usize, 8);
            let p = f.part(t.key);
            tr.write(
                bank.as_ptr() as usize + p * CACHE_LINE + fill[p] as usize * 8,
                8,
            );
            tr.ops(4);
            fill[p] += 1;
            if fill[p] as usize == TUPLES_PER_CACHELINE {
                fill[p] = 0;
                tr.write(out.as_ptr() as usize + cursor[p] * 8, CACHE_LINE);
            }
            out[cursor[p]] = *t;
            cursor[p] += 1;
        }
    } else {
        for t in input {
            tr.read(t as *const Tuple as usize, 8);
            let p = f.part(t.key);
            tr.write(out.as_ptr() as usize + cursor[p] * 8, 8);
            tr.ops(4);
            out[cursor[p]] = *t;
            cursor[p] += 1;
        }
    }
    (out, offsets)
}

/// Per-partition traced build+probe over a partitioned pair.
fn traced_partition_join(
    kind: TableKind,
    bits: u32,
    domain: usize,
    pr: &(Vec<Tuple>, Vec<usize>),
    ps: &(Vec<Tuple>, Vec<usize>),
    tr: &mut impl MemTracer,
) -> u64 {
    let fanout = pr.1.len() - 1;
    let mut matches = 0u64;
    for p in 0..fanout {
        let r_part = &pr.0[pr.1[p]..pr.1[p + 1]];
        let s_part = &ps.0[ps.1[p]..ps.1[p + 1]];
        match kind {
            TableKind::Chained => {
                let mut t = StChainedTable::<IdentityHash>::with_capacity(r_part.len());
                for tup in r_part {
                    tr.read(tup as *const Tuple as usize, 8);
                    t.insert_traced(*tup, tr);
                }
                for tup in s_part {
                    tr.read(tup as *const Tuple as usize, 8);
                    t.probe_traced(tup.key, tr, |_| matches += 1);
                }
            }
            TableKind::Linear => {
                let mut t = StLinearTable::<IdentityHash>::with_capacity(r_part.len());
                for tup in r_part {
                    tr.read(tup as *const Tuple as usize, 8);
                    t.insert_traced(*tup, tr);
                }
                for tup in s_part {
                    tr.read(tup as *const Tuple as usize, 8);
                    t.probe_traced(tup.key, tr, |_| matches += 1);
                }
            }
            TableKind::Array => {
                let len = (domain >> bits) + 2;
                let mut t = ArrayTable::new(len, bits);
                for tup in r_part {
                    tr.read(tup as *const Tuple as usize, 8);
                    t.insert_traced(*tup, tr);
                }
                for tup in s_part {
                    tr.read(tup as *const Tuple as usize, 8);
                    t.probe_traced(tup.key, tr, |_| matches += 1);
                }
            }
        }
    }
    matches
}

/// Run one algorithm instrumented. `scale` shrinks caches/pages (inputs
/// should be the paper's divided by the same factor); `bits` is the radix
/// fanout for partitioned algorithms.
pub fn instrument(
    algorithm: Algorithm,
    r: &Relation,
    s: &Relation,
    scale: usize,
    page: PageConfig,
    bits: u32,
) -> InstrumentedRun {
    let mut ms = sim(scale, page);
    let domain = r.len().max(1);
    let mut matches = 0u64;

    let (first, second) = match algorithm {
        Algorithm::Nop => {
            let mut table = StLinearTable::<IdentityHash>::with_capacity(r.len());
            for t in r.tuples() {
                ms.read(t as *const Tuple as usize, 8);
                table.insert_traced(*t, &mut ms);
            }
            let first = ms.reset_counters();
            // Unique dense build keys: first-match probes (the original
            // NOP's semantics; scanning the whole collision run would be
            // O(|R|) per probe here).
            for t in s.tuples() {
                ms.read(t as *const Tuple as usize, 8);
                table.probe_first_traced(t.key, &mut ms, |_| matches += 1);
            }
            (first, ms.reset_counters())
        }
        Algorithm::Nopa => {
            let mut table = ArrayTable::new(domain + 2, 0);
            for t in r.tuples() {
                ms.read(t as *const Tuple as usize, 8);
                table.insert_traced(*t, &mut ms);
            }
            let first = ms.reset_counters();
            for t in s.tuples() {
                ms.read(t as *const Tuple as usize, 8);
                table.probe_traced(t.key, &mut ms, |_| matches += 1);
            }
            (first, ms.reset_counters())
        }
        Algorithm::Chtj => {
            // CHTJ: bitmap (8n positions) + interleaved prefix + dense
            // array. The bulkload is replayed as its address pattern;
            // probes touch the bitmap group then the dense array slot —
            // the "two random accesses per operation" of the paper.
            let n = r.len().max(1);
            let positions = (n * 8).next_power_of_two();
            let groups = vec![0u64; positions / 64 * 2];
            let array = vec![Tuple::new(0, 0); n];
            let hash = |k: u32| {
                let x = k.wrapping_mul(2_654_435_761);
                ((x ^ (x >> 16)) as usize) & (positions - 1)
            };
            for (cursor, t) in r.tuples().iter().enumerate() {
                ms.read(t as *const Tuple as usize, 8);
                let pos = hash(t.key);
                ms.write(groups.as_ptr() as usize + pos / 64 * 16, 8);
                ms.write(array.as_ptr() as usize + cursor * 8, 8);
                ms.ops(7);
            }
            let first = ms.reset_counters();
            // A real (untraced) table answers the probes so `matches` is
            // exact; the traced addresses are the CHT's.
            let mut table = StLinearTable::<IdentityHash>::with_capacity(r.len());
            for t in r.tuples() {
                table.insert(*t);
            }
            for t in s.tuples() {
                ms.read(t as *const Tuple as usize, 8);
                let pos = hash(t.key);
                ms.read(groups.as_ptr() as usize + pos / 64 * 16, 8);
                let approx_rank = (pos as u64 * n as u64 / positions as u64) as usize;
                ms.read(array.as_ptr() as usize + approx_rank.min(n - 1) * 8, 8);
                ms.ops(8);
                table.probe(t.key, |_| matches += 1);
            }
            (first, ms.reset_counters())
        }
        Algorithm::Mway => {
            let f = RadixFn::new(bits.min(6));
            let pr = traced_scatter(r.tuples(), f, true, &mut ms);
            let ps = traced_scatter(s.tuples(), f, true, &mut ms);
            let mut sorted_r: Vec<Vec<u64>> = Vec::new();
            let mut sorted_s: Vec<Vec<u64>> = Vec::new();
            for p in 0..f.fanout() {
                sorted_r.push(traced_sort(&pr.0[pr.1[p]..pr.1[p + 1]], &mut ms));
                sorted_s.push(traced_sort(&ps.0[ps.1[p]..ps.1[p + 1]], &mut ms));
            }
            let first = ms.reset_counters();
            for p in 0..f.fanout() {
                matches += traced_merge_join(&sorted_r[p], &sorted_s[p], &mut ms);
            }
            (first, ms.reset_counters())
        }
        Algorithm::Prb => {
            // Two unbuffered passes (the second re-reads pass-1 output).
            let b1 = bits / 2;
            let p1r = traced_scatter(r.tuples(), RadixFn::new(b1), false, &mut ms);
            let pr = traced_scatter(&p1r.0, RadixFn::new(bits), false, &mut ms);
            let p1s = traced_scatter(s.tuples(), RadixFn::new(b1), false, &mut ms);
            let ps = traced_scatter(&p1s.0, RadixFn::new(bits), false, &mut ms);
            let first = ms.reset_counters();
            matches = traced_partition_join(TableKind::Chained, bits, domain, &pr, &ps, &mut ms);
            (first, ms.reset_counters())
        }
        _ => {
            // PRO family and CPR family: one buffered pass (the chunked
            // variant's per-chunk scatter has the same single-thread
            // trace), then per-partition joins.
            let kind = match algorithm {
                Algorithm::Pro | Algorithm::ProIs => TableKind::Chained,
                Algorithm::Prl | Algorithm::PrlIs | Algorithm::Cprl => TableKind::Linear,
                _ => TableKind::Array,
            };
            let f = RadixFn::new(bits);
            let pr = traced_scatter(r.tuples(), f, true, &mut ms);
            let ps = traced_scatter(s.tuples(), f, true, &mut ms);
            let first = ms.reset_counters();
            matches = traced_partition_join(kind, bits, domain, &pr, &ps, &mut ms);
            (first, ms.reset_counters())
        }
    };

    InstrumentedRun {
        algorithm,
        first,
        second,
        matches,
    }
}

/// Panic-isolating wrapper around [`instrument`]: a panic anywhere in
/// the traced replay (a kernel bug, a failpoint armed on the thread)
/// comes back as [`crate::JoinError::WorkerPanicked`] with phase
/// `"instrument"` instead of unwinding into the caller.
pub fn try_instrument(
    algorithm: Algorithm,
    r: &Relation,
    s: &Relation,
    scale: usize,
    page: PageConfig,
    bits: u32,
) -> Result<InstrumentedRun, crate::JoinError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        instrument(algorithm, r, s, scale, page, bits)
    }))
    .map_err(|payload| crate::JoinError::WorkerPanicked {
        phase: "instrument",
        payload: crate::fault::panic_message(payload.as_ref()),
    })
}

/// Traced bottom-up mergesort (each pass streams the data once).
fn traced_sort(tuples: &[Tuple], ms: &mut MemSim) -> Vec<u64> {
    let mut packed: Vec<u64> = tuples.iter().map(|t| t.pack()).collect();
    let n = packed.len();
    if n > 1 {
        let passes = (n as f64).log2().ceil() as u64;
        for _ in 0..passes {
            for i in 0..n {
                ms.read(packed.as_ptr() as usize + i * 8, 8);
                ms.write(packed.as_ptr() as usize + i * 8, 8);
                ms.ops(3);
            }
        }
    }
    packed.sort_unstable();
    packed
}

fn traced_merge_join(rs: &[u64], ss: &[u64], ms: &mut MemSim) -> u64 {
    let (mut i, mut j, mut m) = (0usize, 0usize, 0u64);
    while i < rs.len() && j < ss.len() {
        ms.read(rs.as_ptr() as usize + i * 8, 8);
        ms.read(ss.as_ptr() as usize + j * 8, 8);
        ms.ops(3);
        let rk = rs[i] >> 32;
        let sk = ss[j] >> 32;
        if rk < sk {
            i += 1;
        } else if sk < rk {
            j += 1;
        } else {
            // Dense unique build keys: one match per probe tuple.
            m += 1;
            j += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
    use mmjoin_util::Placement;

    /// Scale factor for caches/pages. The workload below is the paper's
    /// |R|=128M / |S|=1280M divided by ~1280; using a cache scale of 512
    /// keeps every structure-vs-cache ratio within ~2.5x of the real
    /// machine's, preserving the miss-rate relationships Table 4 reports.
    const SCALE: usize = 512;
    /// Radix bits such that a per-partition table fits the scaled L2
    /// (40k tuples x 16 B / 2^11 = 312 B <= 512 B).
    const BITS: u32 = 11;

    fn workload() -> (Relation, Relation) {
        let r = gen_build_dense(40_000, 1, Placement::Interleaved);
        let s = gen_probe_fk(400_000, 40_000, 2, Placement::Interleaved);
        (r, s)
    }

    #[test]
    fn partitioned_join_phase_beats_nop_on_locality() {
        let (r, s) = workload();
        let pro = instrument(Algorithm::Pro, &r, &s, SCALE, PageConfig::huge(SCALE), BITS);
        let nop = instrument(Algorithm::Nop, &r, &s, SCALE, PageConfig::huge(SCALE), BITS);
        assert_eq!(pro.matches, 400_000);
        assert_eq!(nop.matches, 400_000);
        // Table 4's central claim: the partitioned join phase is far more
        // cache-local than NOP's probe into a giant global table.
        assert!(
            pro.second.l2_hit_rate() > nop.second.l2_hit_rate(),
            "PRO {} vs NOP {}",
            pro.second.l2_hit_rate(),
            nop.second.l2_hit_rate()
        );
        assert!(
            nop.second.l3_misses > 2 * pro.second.l3_misses,
            "NOP {} vs PRO {}",
            nop.second.l3_misses,
            pro.second.l3_misses
        );
        // ...and pays for it with more total instructions (partitioning).
        assert!(pro.first.ops > nop.first.ops);
    }

    #[test]
    fn chtj_touches_more_than_nop_per_probe() {
        let (r, s) = workload();
        let chtj = instrument(
            Algorithm::Chtj,
            &r,
            &s,
            SCALE,
            PageConfig::huge(SCALE),
            BITS,
        );
        let nop = instrument(Algorithm::Nop, &r, &s, SCALE, PageConfig::huge(SCALE), BITS);
        assert_eq!(chtj.matches, 400_000);
        // Two random structures per probe => more probe-phase misses.
        assert!(
            chtj.second.l3_misses > nop.second.l3_misses,
            "CHTJ {} vs NOP {}",
            chtj.second.l3_misses,
            nop.second.l3_misses
        );
    }

    #[test]
    fn prb_tlb_inversion_with_huge_pages() {
        // The Figure 8 mechanism: PRB (128 partitions/pass, unbuffered)
        // fits a 256-entry small-page TLB but thrashes 32 huge-page
        // entries in the partition phase.
        let (r, s) = workload();
        let small = instrument(Algorithm::Prb, &r, &s, SCALE, PageConfig::small(SCALE), 14);
        let huge = instrument(Algorithm::Prb, &r, &s, SCALE, PageConfig::huge(SCALE), 14);
        assert_eq!(small.matches, huge.matches);
        assert!(
            huge.first.tlb_misses > small.first.tlb_misses,
            "huge {} vs small {}",
            huge.first.tlb_misses,
            small.first.tlb_misses
        );
    }

    #[test]
    fn swwcb_cuts_scatter_tlb_misses() {
        // PRO (buffered) vs PRB (unbuffered) partitioning under huge
        // pages: write combining divides TLB pressure by the tuples per
        // cache line.
        let (r, s) = workload();
        let pro = instrument(Algorithm::Pro, &r, &s, SCALE, PageConfig::huge(SCALE), BITS);
        let prb = instrument(Algorithm::Prb, &r, &s, SCALE, PageConfig::huge(SCALE), 14);
        assert!(
            prb.first.tlb_misses > pro.first.tlb_misses,
            "PRB {} vs PRO {}",
            prb.first.tlb_misses,
            pro.first.tlb_misses
        );
    }

    #[test]
    fn array_join_fewer_ops_than_hash_join() {
        let (r, s) = workload();
        let pra = instrument(Algorithm::Pra, &r, &s, SCALE, PageConfig::huge(SCALE), BITS);
        let pro = instrument(Algorithm::Pro, &r, &s, SCALE, PageConfig::huge(SCALE), BITS);
        assert_eq!(pra.matches, pro.matches);
        assert!(pra.second.ops < pro.second.ops);
    }

    #[test]
    fn mway_join_phase_is_streaming() {
        let (r, s) = workload();
        let mway = instrument(Algorithm::Mway, &r, &s, SCALE, PageConfig::huge(SCALE), 6);
        assert_eq!(mway.matches, 400_000);
        // Merge-join misses are tiny relative to accesses (sequential).
        let rate = mway.second.l3_misses as f64 / mway.second.accesses.max(1) as f64;
        assert!(rate < 0.2, "merge-join L3 miss rate {rate}");
    }
}
