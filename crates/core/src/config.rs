//! Join execution configuration.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mmjoin_numamodel::{CostModel, Topology};
use mmjoin_partition::{predict_radix_bits, BitsInput};
use mmjoin_util::kernels::KernelMode;
use mmjoin_util::mem::AllocPolicy;

use crate::executor::Executor;
use crate::fault::CancelToken;

/// Per-partition hash-table choice — the "Choice of Hash Method"
/// dimension of Section 5.2.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// Bucket-chained (Balkesen et al.) — PRB/PRO/PROiS.
    Chained,
    /// Linear probing — PRL/CPRL and friends.
    Linear,
    /// Plain payload array over the (dense) key domain — PRA/CPRA.
    Array,
}

/// Observability configuration (see `mmjoin_core::observe` and
/// DESIGN.md §10). Off by default; when enabled, every phase of a join
/// records a [`mmjoin_util::pool::WorkerPhaseStat`] span per worker per
/// barrier broadcast — start/stop timestamps, morsels run, steals, and
/// native PMU counter deltas where the host exposes them (all `None`
/// otherwise, never an error).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Record per-worker spans and native counter deltas.
    pub enabled: bool,
}

impl ProfileConfig {
    /// Profiling on.
    pub const fn on() -> ProfileConfig {
        ProfileConfig { enabled: true }
    }

    /// Profiling off (the default; the executor's zero-cost path).
    pub const fn off() -> ProfileConfig {
        ProfileConfig { enabled: false }
    }
}

/// Configuration shared by all join algorithms.
#[derive(Clone, Debug)]
pub struct JoinConfig {
    /// Worker threads actually spawned on this host.
    pub threads: usize,
    /// Thread count presented to the NUMA cost model (defaults to
    /// `threads`). Lets a 4-thread host run emulate the paper's
    /// 32-thread configuration.
    pub sim_threads: Option<usize>,
    /// The simulated machine (defaults to the paper's 4-socket box).
    pub topology: Topology,
    /// NUMA cost-model parameters.
    pub cost: CostModel,
    /// Compute simulated phase times and bandwidth timelines.
    pub simulate: bool,
    /// Override the number of radix bits (otherwise Equation (1)).
    pub radix_bits: Option<u32>,
    /// Upper bound of the build key domain (`max key`). The canonical
    /// dense workload has `domain == |R|`; the Appendix C sparse
    /// workloads have `domain == k·|R|`. Array joins size their arrays
    /// from this. `0` means "derive from |R|" (dense assumption).
    pub key_domain: usize,
    /// Keep per-phase bandwidth timelines in the result (Figure 6);
    /// costs memory for very high fanouts, so off by default.
    pub keep_timelines: bool,
    /// Zipf skew of the probe keys, used by the cost model to account
    /// for cache-effective hot keys (Appendix A). 0 = uniform.
    pub probe_theta: f64,
    /// Cooperative processing of oversized co-partitions (see
    /// `mmjoin_core::skew`). Off by default: the paper's algorithms rely
    /// on task-queue balancing only.
    pub skew_handling: bool,
    /// Whether the build relation's keys are unique (the study's
    /// standing primary-key assumption, Section 7.1). When true, NOP's
    /// linear probes stop at the first match; set to false for general
    /// multiset builds (probes then scan the full collision run).
    pub unique_build_keys: bool,
    /// Wall-clock bound on the whole join; checked at morsel granularity
    /// and at every phase boundary. Exceeding it makes the join return
    /// `JoinError::Timedout` with the `PhaseStat`s completed so far.
    pub deadline: Option<Duration>,
    /// Byte budget for the join's large allocations (partition buffers,
    /// hash tables, SWWCB pools, materialization vectors). Exceeding it
    /// yields `JoinError::MemoryBudgetExceeded` instead of an abort.
    pub mem_limit: Option<usize>,
    /// Hardware-kernel selection (streaming SWWCB flushes, prefetched
    /// probe pipelines). `None` leaves the process-wide mode alone
    /// (resolved from `MMJOIN_KERNELS` / CPU detection on first use);
    /// `Some(mode)` installs `mode` process-wide when the join starts.
    pub kernel_mode: Option<KernelMode>,
    /// Memory-allocation policy for the join's large buffers (hash
    /// tables, partition buffers, sort runs, materialized output; see
    /// `mmjoin_util::mem`). `None` leaves the process-wide policy alone
    /// (resolved from `MMJOIN_ALLOC` on first use); `Some(policy)`
    /// installs `policy` process-wide when the join starts. Unavailable
    /// backends (no hugepages, no NUMA syscalls) degrade silently.
    pub alloc_policy: Option<AllocPolicy>,
    /// Cooperative cancellation handle; cancel any clone of the token to
    /// make in-flight joins on this config return `JoinError::Cancelled`.
    pub cancel: CancelToken,
    /// Per-worker span + native-counter recording (off by default).
    pub profile: ProfileConfig,
    /// Tuples per batch flowing between pipeline operators (see
    /// `mmjoin_core::pipeline` and DESIGN.md §12). 1024 tuples × 8 B
    /// keeps a batch and its per-stage output inside L1 alongside the
    /// probe pipeline's prefetch groups.
    pub pipeline_batch: usize,
    /// Parent directory for the spilling join's temp directory
    /// (`Algorithm::Shhj`; see DESIGN.md §13). `None` uses the system
    /// temp dir. Each join creates (and removes on completion) its own
    /// uniquely named subdirectory.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Whether the spilling join may evict partitions to disk when the
    /// memory budget refuses a reservation (default true). With
    /// `false`, SHHJ degrades to classic behavior: budget pressure
    /// fails the join with `JoinError::MemoryBudgetExceeded`.
    pub spill: bool,
    /// The persistent worker pool all phases of a join run on, resolved
    /// lazily from `threads` on first use (see [`JoinConfig::executor`]).
    exec: OnceLock<Arc<Executor>>,
}

impl JoinConfig {
    /// Default configuration with `threads` workers.
    pub fn new(threads: usize) -> Self {
        JoinConfig {
            threads: threads.max(1),
            sim_threads: None,
            topology: Topology::paper_machine(),
            cost: CostModel::paper_machine(),
            simulate: true,
            radix_bits: None,
            key_domain: 0,
            keep_timelines: false,
            probe_theta: 0.0,
            skew_handling: false,
            unique_build_keys: true,
            deadline: None,
            mem_limit: None,
            kernel_mode: None,
            alloc_policy: None,
            cancel: CancelToken::new(),
            profile: ProfileConfig::off(),
            pipeline_batch: 1024,
            spill_dir: None,
            spill: true,
            exec: OnceLock::new(),
        }
    }

    /// The persistent executor this configuration's joins run on: the
    /// process-wide pool for `threads` workers, created on first use and
    /// shared across configs and joins with the same thread count.
    pub fn executor(&self) -> Arc<Executor> {
        Arc::clone(self.exec.get_or_init(|| Executor::shared(self.threads)))
    }

    /// Threads used by the cost model.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads.unwrap_or(self.threads).max(1)
    }

    /// The key domain for array joins given the build cardinality.
    pub fn domain(&self, r_len: usize) -> usize {
        if self.key_domain == 0 {
            r_len
        } else {
            self.key_domain
        }
    }

    /// Radix bits for a hash-table-backed partitioned join (Equation 1).
    pub fn bits_for_hash_tables(&self, r_len: usize) -> u32 {
        if let Some(b) = self.radix_bits {
            return b;
        }
        let mut input =
            BitsInput::paper_defaults(r_len, self.topology.llc_per_thread(self.sim_threads()));
        input.l2_bytes = self.topology.l2_bytes();
        // SWWCB state bytes are physical constants; in a capacity-scaled
        // run they must scale with the caches or Equation (1)'s budget
        // condition flips to the LLC branch far too early.
        input.buffer_bytes = (input.buffer_bytes / self.topology.capacity_scale).max(1);
        predict_radix_bits(&input)
    }

    /// Radix bits for an array-table partitioned join: the partition's
    /// payload array (4 B per domain slot) plays the role of the table.
    pub fn bits_for_array_tables(&self, r_len: usize) -> u32 {
        if let Some(b) = self.radix_bits {
            return b;
        }
        let mut input =
            BitsInput::paper_defaults(r_len, self.topology.llc_per_thread(self.sim_threads()));
        input.l2_bytes = self.topology.l2_bytes();
        input.buffer_bytes = (input.buffer_bytes / self.topology.capacity_scale).max(1);
        mmjoin_partition::bits::predict_radix_bits_for_domain(self.domain(r_len), &input)
    }
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_defaults_to_build_size() {
        let cfg = JoinConfig::new(4);
        assert_eq!(cfg.domain(1000), 1000);
        let mut sparse = JoinConfig::new(4);
        sparse.key_domain = 5000;
        assert_eq!(sparse.domain(1000), 5000);
    }

    #[test]
    fn bits_override_wins() {
        let mut cfg = JoinConfig::new(4);
        cfg.radix_bits = Some(9);
        assert_eq!(cfg.bits_for_hash_tables(1 << 24), 9);
        assert_eq!(cfg.bits_for_array_tables(1 << 24), 9);
    }

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(JoinConfig::new(0).threads, 1);
    }

    #[test]
    fn array_bits_grow_with_sparse_domain() {
        let mut dense = JoinConfig::new(32);
        dense.key_domain = 0;
        let mut sparse = JoinConfig::new(32);
        sparse.key_domain = 16 * (16 << 20);
        let n = 16 << 20;
        assert!(sparse.bits_for_array_tables(n) > dense.bits_for_array_tables(n));
    }
}
