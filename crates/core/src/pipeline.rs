//! The composable operator pipeline — fused multi-join execution with
//! late materialization (DESIGN.md §12).
//!
//! The thirteen classic drivers each own their morsel loops end-to-end,
//! so a query chaining two joins pays a full materialization of the
//! intermediate result between them. This module decomposes the ported
//! drivers into the four operator roles of a push-based pipeline:
//!
//! * **Partition** — radix-route a batch to a partitioned build side's
//!   per-partition tables (PR* stages only; fused into the probe here,
//!   it never materializes a partitioned copy of the probe input).
//! * **Build** — construct a stage's immutable build side. Runs once,
//!   at [`BuildSide::prepare`] time; the result is `Arc`-held and
//!   reusable across pipelines (the hook for a hot-relation cache).
//! * **Probe** — probe one build side with a cache-resident batch of
//!   `(key, rid)` pairs, emitting `(build_payload, rid)` pairs.
//! * **Materialize** — the sink: gather the probe-side payload by `rid`
//!   and fold matches into the order-independent [`JoinChecksum`].
//!
//! Between stages only fixed-size batches of 8-byte `(key, rid)` tuples
//! flow — payload columns are gathered *once*, at the sink (late
//! materialization), so an `n`-join chain avoids `n-1` materialized
//! intermediate relations entirely.
//!
//! Fault plumbing (PR 2) and per-phase spans (PR 4) flow through
//! unchanged: every phase runs under a [`FaultCtx`] with deadline /
//! cancellation checks at morsel granularity, memory charges before
//! large allocations, and `push_phase_pool` span collection.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use mmjoin_hashtable::{
    ArrayTable, ConciseHashTable, ConcurrentArrayTable, ConcurrentLinearTable, IdentityHash,
    JoinTable, MultiplicativeHash, ProbeOperator, StChainedTable, StLinearTable,
};
use mmjoin_partition::{partition_parallel_on, PartitionedRelation, RadixFn, ScatterMode};
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::chunk_range;
use mmjoin_util::pool::{broadcast_map, WorkerPool};
use mmjoin_util::tuple::{Payload, Tuple};
use mmjoin_util::Relation;

use crate::config::{JoinConfig, TableKind};
use crate::exec::{morsel_map, parallel_chunks, MORSEL};
use crate::executor::{Executor, QueuePolicy};
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::{JoinConfigBuilder, JoinError};
use crate::spec::{self, ops, FusedStageModel, PartitionLayout, PartitionWrites};
use crate::stats::{JoinResult, PhaseStat};
use crate::Algorithm;

/// Bytes of one materialized intermediate tuple a fused stage avoids —
/// the [`crate::materialize::JoinMatch`] a two-step plan would write and
/// re-read per match.
pub const INTERMEDIATE_TUPLE_BYTES: u64 =
    std::mem::size_of::<crate::materialize::JoinMatch>() as u64;

/// Drivers ported onto the operator pipeline; the rest still run only
/// through their monolithic drivers (see the matrix in README.md).
pub const PORTED: [Algorithm; 6] = [
    Algorithm::Nop,
    Algorithm::Nopa,
    Algorithm::Chtj,
    Algorithm::Pro,
    Algorithm::Prl,
    Algorithm::Pra,
];

/// Whether `algorithm` has an operator-pipeline port.
pub fn is_ported(algorithm: Algorithm) -> bool {
    PORTED.contains(&algorithm)
}

/// The operator roles a pipeline composes (see the module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OperatorKind {
    /// Radix-route batches to a partitioned build side's tables.
    Partition,
    /// Construct a stage's immutable build side (runs at prepare time).
    Build,
    /// Batched probe of one build side.
    Probe,
    /// Gather probe payloads by row id and fold into the checksum.
    Materialize,
}

/// One stage's immutable build side: the algorithm-specific table(s)
/// plus the phase stats of their construction. `Arc`-held and reusable
/// across pipelines — build once, probe from many plans.
pub struct BuildSide {
    algorithm: Algorithm,
    inner: BuildInner,
    phases: Vec<PhaseStat>,
    radix_bits: Option<u32>,
    memory_bytes: usize,
    /// Build tuples frozen into the side.
    tuples: usize,
    /// Process-wide allocation policy in effect when the side was built.
    alloc_policy: String,
    /// Cost-model shape of one probe into this side.
    accesses_per_probe: f64,
    cpu_per_probe: f64,
}

/// Occupancy and provenance summary of a frozen [`BuildSide`] — what a
/// service cache reports per entry without re-deriving it from the
/// tables ([`BuildSide::stats`]).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct BuildSideStats {
    /// The driver the side was built for.
    pub algorithm: Algorithm,
    /// Build tuples frozen into the side.
    pub tuples: usize,
    /// Bytes resident in the frozen table(s).
    pub bytes: usize,
    /// Radix bits of a partitioned side (`None` for global tables).
    pub radix_bits: Option<u32>,
    /// Allocation policy the tables were built under ("portable",
    /// "thp", ...; see `mmjoin_util::mem::policy_name`).
    pub alloc_policy: String,
    /// Per-phase construction counters, in phase order.
    pub build_phases: Vec<BuildPhaseCounters>,
}

/// One build phase's counters inside [`BuildSideStats`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct BuildPhaseCounters {
    /// Phase label ("partition", "build").
    pub name: &'static str,
    /// Wall-clock time of the phase.
    pub wall: std::time::Duration,
    /// Morsels executed.
    pub tasks: u64,
    /// Morsels claimed from a remote queue.
    pub steals: u64,
}

enum BuildInner {
    /// NOP: one global lock-free linear-probing table.
    Linear(ConcurrentLinearTable<IdentityHash>),
    /// NOPA: one global payload array over the dense key domain.
    Array(ConcurrentArrayTable),
    /// CHTJ: the bulkloaded, read-only concise hash table.
    Concise(ConciseHashTable<MultiplicativeHash>),
    /// PRO/PRL/PRA: per-partition tables; probes are radix-routed.
    Partitioned { radix: RadixFn, tables: PartTables },
}

enum PartTables {
    Chained(Vec<StChainedTable<IdentityHash>>),
    Linear(Vec<StLinearTable<IdentityHash>>),
    Array(Vec<ArrayTable>),
}

impl PartTables {
    fn probe<F: FnMut(&Tuple, Payload)>(
        &self,
        p: usize,
        probes: &[Tuple],
        unique: bool,
        f: &mut F,
    ) {
        match self {
            PartTables::Chained(v) => JoinTable::probe_batch(&v[p], probes, unique, f),
            PartTables::Linear(v) => JoinTable::probe_batch(&v[p], probes, unique, f),
            PartTables::Array(v) => JoinTable::probe_batch(&v[p], probes, unique, f),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            PartTables::Chained(v) => v.iter().map(|t| t.memory_bytes()).sum(),
            PartTables::Linear(v) => v.iter().map(|t| t.memory_bytes()).sum(),
            PartTables::Array(v) => v.iter().map(|t| t.memory_bytes()).sum(),
        }
    }
}

impl std::fmt::Debug for BuildSide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildSide")
            .field("algorithm", &self.algorithm)
            .field("memory_bytes", &self.memory_bytes)
            .field("radix_bits", &self.radix_bits)
            .finish_non_exhaustive()
    }
}

impl BuildSide {
    /// Run `algorithm`'s build-side phases over `r` and freeze the
    /// result for probing. Exactly the monolithic driver's partition +
    /// build work — same memory charges, same failpoints, same phase
    /// spans — minus everything probe-related.
    ///
    /// The memory budget is charged for the construction-time peak and
    /// released when this returns; how long the `Arc` lives afterwards
    /// is the caller's concern.
    pub fn prepare(
        algorithm: Algorithm,
        r: &Relation,
        cfg: &JoinConfig,
    ) -> Result<Arc<BuildSide>, JoinError> {
        match catch_unwind(AssertUnwindSafe(|| prepare_inner(algorithm, r, cfg))) {
            Ok(res) => res,
            Err(payload) => Err(JoinError::WorkerPanicked {
                phase: crate::fault::current_phase(),
                payload: crate::fault::panic_message(payload.as_ref()),
            }),
        }
    }

    /// The driver this side was built for.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Bytes resident in the frozen table(s).
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Radix bits of a partitioned side (`None` for global tables).
    pub fn radix_bits(&self) -> Option<u32> {
        self.radix_bits
    }

    /// Phase stats of the build-side construction.
    pub fn build_phases(&self) -> &[PhaseStat] {
        &self.phases
    }

    /// Occupancy and provenance summary: tuples, resident bytes, the
    /// allocation policy the tables were built under, and per-phase
    /// construction counters. Everything a service cache needs to
    /// report an entry without re-deriving it.
    pub fn stats(&self) -> BuildSideStats {
        BuildSideStats {
            algorithm: self.algorithm,
            tuples: self.tuples,
            bytes: self.memory_bytes,
            radix_bits: self.radix_bits,
            alloc_policy: self.alloc_policy.clone(),
            build_phases: self
                .phases
                .iter()
                .map(|p| BuildPhaseCounters {
                    name: p.name,
                    wall: p.wall,
                    tasks: p.exec.tasks,
                    steals: p.exec.steals,
                })
                .collect(),
        }
    }

    /// The operator roles this side contributes to a pipeline's probe
    /// path (build itself already ran).
    fn probe_operators(&self) -> &'static [OperatorKind] {
        match self.inner {
            BuildInner::Partitioned { .. } => &[OperatorKind::Partition, OperatorKind::Probe],
            _ => &[OperatorKind::Probe],
        }
    }

    /// Probe one batch, invoking `f(probe_tuple, build_payload)` per
    /// match. Partitioned sides route the batch by radix digit first —
    /// the fused Partition operator: a sort of ≤ one batch, never a
    /// materialized partitioned copy of the probe input.
    fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, mut f: F) {
        match &self.inner {
            BuildInner::Linear(t) => t.probe_op(probes, unique, &mut f),
            BuildInner::Array(t) => t.probe_op(probes, unique, &mut f),
            BuildInner::Concise(t) => t.probe_op(probes, unique, &mut f),
            BuildInner::Partitioned { radix, tables } => {
                let mut routed = probes.to_vec();
                routed.sort_unstable_by_key(|t| radix.part(t.key));
                let mut i = 0;
                while i < routed.len() {
                    let p = radix.part(routed[i].key);
                    let mut j = i + 1;
                    while j < routed.len() && radix.part(routed[j].key) == p {
                        j += 1;
                    }
                    tables.probe(p, &routed[i..j], unique, &mut f);
                    i = j;
                }
            }
        }
    }
}

fn prepare_inner(
    algorithm: Algorithm,
    r: &Relation,
    cfg: &JoinConfig,
) -> Result<Arc<BuildSide>, JoinError> {
    if !is_ported(algorithm) {
        return Err(JoinError::PipelineUnsupported { algorithm });
    }
    // Same front-door validation as `Join::run`: array sides index a
    // payload array by key.
    if algorithm.needs_dense_domain() {
        if let Some(max_key) = r.tuples().iter().map(|t| t.key).max() {
            let domain = cfg.domain(r.len());
            if max_key as usize > domain {
                return Err(JoinError::DomainExceeded {
                    algorithm,
                    max_key,
                    domain,
                });
            }
        }
    }

    let ctx = FaultCtx::begin(algorithm, cfg);
    let mut result = JoinResult::new(algorithm);
    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    let mut radix_bits = None;
    let (inner, accesses, cpu) = match algorithm {
        Algorithm::Nop => {
            ctx.enter_phase("build");
            let _table_charge = ctx.charge((2 * r.len().max(1)).next_power_of_two() * 8)?;
            let table = ConcurrentLinearTable::<IdentityHash>::with_capacity(r.len());
            let table_bytes = table.memory_bytes() as f64;
            let start = Instant::now();
            parallel_chunks(&cpool, r.tuples(), |_, chunk| {
                for block in chunk.chunks(MORSEL) {
                    if ctx.should_stop() {
                        return;
                    }
                    table.insert_batch(block);
                }
            });
            let build_wall = start.elapsed();
            let specs =
                spec::global_build_specs(cfg, r.len(), r.placement(), table_bytes, ops::BUILD);
            let order: Vec<usize> = (0..specs.len()).collect();
            let (build_sim, _) = spec::run_phase(cfg, &specs, &order);
            result.push_phase_pool("build", build_wall, build_sim, &pool);
            ctx.checkpoint(&result)?;
            (BuildInner::Linear(table), 1.0, ops::PROBE)
        }
        Algorithm::Nopa => {
            ctx.enter_phase("build");
            let domain = cfg.domain(r.len());
            let _table_charge = ctx.charge((domain + 1) * 8)?;
            let table = ConcurrentArrayTable::new(domain + 1, 1);
            let table_bytes = table.memory_bytes() as f64;
            let start = Instant::now();
            parallel_chunks(&cpool, r.tuples(), |_, chunk| {
                for block in chunk.chunks(MORSEL) {
                    if ctx.should_stop() {
                        return;
                    }
                    table.insert_batch(block);
                }
            });
            let build_wall = start.elapsed();
            let specs =
                spec::global_build_specs(cfg, r.len(), r.placement(), table_bytes, ops::ARRAY);
            let order: Vec<usize> = (0..specs.len()).collect();
            let (build_sim, _) = spec::run_phase(cfg, &specs, &order);
            result.push_phase_pool("build", build_wall, build_sim, &pool);
            ctx.checkpoint(&result)?;
            (BuildInner::Array(table), 1.0, ops::ARRAY)
        }
        Algorithm::Chtj => {
            ctx.enter_phase("build");
            let _table_charge = ctx.charge(r.len() * 16)?;
            let start = Instant::now();
            let cht = ConciseHashTable::<MultiplicativeHash>::build_on(r.tuples(), &cpool);
            let build_wall = start.elapsed();
            let table_bytes = cht.memory_bytes() as f64;
            let specs = spec::global_build_specs(
                cfg,
                r.len(),
                r.placement(),
                table_bytes,
                ops::BUILD + 2.0,
            );
            let order: Vec<usize> = (0..specs.len()).collect();
            let (build_sim, _) = spec::run_phase(cfg, &specs, &order);
            result.push_phase_pool("build", build_wall, build_sim, &pool);
            ctx.checkpoint(&result)?;
            (BuildInner::Concise(cht), 2.0, ops::CHT_PROBE)
        }
        Algorithm::Pro | Algorithm::Prl | Algorithm::Pra => {
            let kind = match algorithm {
                Algorithm::Pro => TableKind::Chained,
                Algorithm::Prl => TableKind::Linear,
                _ => TableKind::Array,
            };
            let bits = crate::pro::radix_bits(cfg, kind, r.len());
            radix_bits = Some(bits);
            let f = RadixFn::new(bits);
            let parts = f.fanout();
            let domain = cfg.domain(r.len());

            // Partition phase — build side only: the probe input is
            // routed batch-by-batch at probe time, never copied.
            ctx.enter_phase("partition");
            let _part_charge = ctx.charge(r.len() * 8 + cfg.threads * parts * 64)?;
            let start = Instant::now();
            let pr = partition_parallel_on(r.tuples(), f, &cpool, ScatterMode::Swwcb);
            let part_wall = start.elapsed();
            let specs = spec::partition_pass_specs(
                cfg,
                r.len(),
                r.placement(),
                parts,
                true,
                PartitionWrites::GlobalInterleaved,
            );
            let order: Vec<usize> = (0..specs.len()).collect();
            let (part_sim, part_phase) = spec::run_phase(cfg, &specs, &order);
            result.push_phase_pool("partition", part_wall, part_sim, &pool);
            if cfg.keep_timelines {
                result.timelines.push(("partition", part_phase));
            }
            ctx.checkpoint(&result)?;

            // Build phase: one table per partition off the morsel queue.
            ctx.enter_phase("build");
            let table_bytes_total: usize = (0..parts)
                .map(|p| crate::pro::spec_for(kind, bits, domain, pr.part_len(p)).table_bytes())
                .sum();
            let _table_charge = ctx.charge(table_bytes_total)?;
            let start = Instant::now();
            let tables = build_part_tables(&pool, &ctx, &pr, kind, bits, domain);
            let build_wall = start.elapsed();
            let r_sizes: Vec<usize> = (0..parts).map(|p| pr.part_len(p)).collect();
            let no_probes = vec![0usize; parts];
            let (cpu_build, cpu_probe) = crate::pro::table_cpu(kind);
            let specs = spec::join_task_specs(
                cfg,
                &r_sizes,
                &no_probes,
                PartitionLayout::Contiguous,
                cpu_build,
                cpu_probe,
                crate::pro::table_bytes_per_tuple(kind, domain, bits, r.len()),
            );
            let order: Vec<usize> = (0..specs.len()).collect();
            let (build_sim, _) = spec::run_phase(cfg, &specs, &order);
            result.push_phase_pool("build", build_wall, build_sim, &pool);
            ctx.checkpoint(&result)?;
            (BuildInner::Partitioned { radix: f, tables }, 1.0, cpu_probe)
        }
        // `is_ported` gated everything else above.
        _ => unreachable!("unported algorithm passed the is_ported gate"),
    };

    let memory_bytes = match &inner {
        BuildInner::Linear(t) => t.memory_bytes(),
        BuildInner::Array(t) => t.memory_bytes(),
        BuildInner::Concise(t) => t.memory_bytes(),
        BuildInner::Partitioned { tables, .. } => tables.memory_bytes(),
    };
    Ok(Arc::new(BuildSide {
        algorithm,
        inner,
        phases: result.phases,
        radix_bits,
        memory_bytes,
        tuples: r.len(),
        alloc_policy: mmjoin_util::mem::policy_name(),
        accesses_per_probe: accesses,
        cpu_per_probe: cpu,
    }))
}

fn build_part_tables(
    pool: &Executor,
    ctx: &FaultCtx,
    pr: &PartitionedRelation,
    kind: TableKind,
    bits: u32,
    domain: usize,
) -> PartTables {
    match kind {
        TableKind::Chained => PartTables::Chained(build_tables(pool, ctx, pr, kind, bits, domain)),
        TableKind::Linear => PartTables::Linear(build_tables(pool, ctx, pr, kind, bits, domain)),
        TableKind::Array => PartTables::Array(build_tables(pool, ctx, pr, kind, bits, domain)),
    }
}

fn build_tables<T: JoinTable + Send>(
    pool: &Executor,
    ctx: &FaultCtx,
    pr: &PartitionedRelation,
    kind: TableKind,
    bits: u32,
    domain: usize,
) -> Vec<T> {
    let parts = pr.parts();
    let order: Vec<usize> = (0..parts).collect();
    let mut tabs: Vec<(usize, T)> = morsel_map(pool, &order, parts, QueuePolicy::Shared, |p| {
        let spec = crate::pro::spec_for(kind, bits, domain, pr.part_len(p));
        let mut t = T::with_spec(&spec);
        if !ctx.tick() {
            t.insert_batch(pr.partition(p));
        }
        (p, t)
    });
    tabs.sort_unstable_by_key(|t| t.0);
    tabs.into_iter().map(|(_, t)| t).collect()
}

/// Result of a fused pipeline run.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct PipelineResult {
    /// Matches reaching the sink.
    pub matches: u64,
    /// Order-independent digest over `(key, build_payload,
    /// probe_payload)` at the sink — comparable to
    /// [`JoinResult::checksum`](crate::JoinResult) of the equivalent
    /// materialized plan.
    pub checksum: u64,
    /// Build phases of every stage (in stage order) followed by the one
    /// fused probe phase.
    pub phases: Vec<PhaseStat>,
    /// Matches that crossed a stage boundary *without* being
    /// materialized — what a two-step plan would have written out and
    /// re-read as an intermediate relation.
    pub intermediate_matches: u64,
    /// `intermediate_matches` × the bytes of one materialized
    /// intermediate tuple ([`INTERMEDIATE_TUPLE_BYTES`]).
    pub bytes_avoided: u64,
}

impl PipelineResult {
    /// Total wall time across all phases.
    pub fn total_wall(&self) -> std::time::Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }
}

/// A fused multi-join pipeline: probe tuples flow through every staged
/// build side as cache-resident `(key, rid)` batches, and payloads are
/// gathered only at the sink.
///
/// ```
/// use mmjoin_core::{Algorithm, JoinConfig, Pipeline, pipeline::BuildSide};
/// use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
/// use mmjoin_util::Placement;
///
/// let mut cfg = JoinConfig::new(2);
/// cfg.simulate = false;
/// let r = gen_build_dense(1_000, 7, Placement::Interleaved);
/// let s = gen_probe_fk(4_000, 1_000, 8, Placement::Interleaved);
/// let side = BuildSide::prepare(Algorithm::Nop, &r, &cfg).unwrap();
/// let res = Pipeline::new()
///     .with_stage(side)
///     .with_config(cfg)
///     .run(&s)
///     .unwrap();
/// assert_eq!(res.matches, 4_000);
/// ```
#[must_use = "a Pipeline does nothing until run"]
#[derive(Clone, Default)]
pub struct Pipeline {
    stages: Vec<Arc<BuildSide>>,
    builder: JoinConfigBuilder,
    config: Option<JoinConfig>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.stages)
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// An empty pipeline; add stages with [`Pipeline::with_stage`].
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Append a probe stage: tuples surviving the previous stage probe
    /// `side` next, keyed by that stage's build payload. The `Arc` may
    /// be shared with other pipelines.
    pub fn with_stage(mut self, side: Arc<BuildSide>) -> Self {
        self.stages.push(side);
        self
    }

    /// Host worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.builder = self.builder.with_threads(threads);
        self
    }

    /// Cost-model thread count.
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.builder = self.builder.with_sim_threads(sim_threads);
        self
    }

    /// Simulated NUMA timing on/off.
    pub fn with_simulate(mut self, on: bool) -> Self {
        self.builder = self.builder.with_simulate(on);
        self
    }

    /// Unique-build-keys (PK) assumption for every stage's probes.
    pub fn with_unique_build_keys(mut self, unique: bool) -> Self {
        self.builder = self.builder.with_unique_build_keys(unique);
        self
    }

    /// Tuples per inter-operator batch (must be >= 1).
    pub fn with_batch_size(mut self, tuples: usize) -> Self {
        self.builder = self.builder.with_pipeline_batch(tuples);
        self
    }

    /// Hardware-kernel selection (see
    /// [`JoinConfigBuilder::with_kernel_mode`]).
    pub fn with_kernel_mode(mut self, mode: mmjoin_util::kernels::KernelMode) -> Self {
        self.builder = self.builder.with_kernel_mode(mode);
        self
    }

    /// Wall-clock bound on the probe phase.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.builder = self.builder.with_deadline(deadline);
        self
    }

    /// Byte budget for the pipeline's allocations.
    pub fn with_mem_limit(mut self, bytes: usize) -> Self {
        self.builder = self.builder.with_mem_limit(bytes);
        self
    }

    /// Cancellation handle for this pipeline's runs.
    pub fn with_cancel_token(mut self, token: crate::fault::CancelToken) -> Self {
        self.builder = self.builder.with_cancel_token(token);
        self
    }

    /// Per-worker span + native-counter recording.
    pub fn with_profile(mut self, profile: crate::config::ProfileConfig) -> Self {
        self.builder = self.builder.with_profile(profile);
        self
    }

    /// Use a fully-formed configuration, bypassing the builder knobs.
    /// Should match the configuration the stages were prepared with.
    pub fn with_config(mut self, cfg: JoinConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Number of staged build sides.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The operator graph this pipeline executes: every stage's Build
    /// (already run at prepare time), then the fused probe path —
    /// per-stage Partition (partitioned sides only) and Probe — ending
    /// in the one Materialize sink.
    pub fn operators(&self) -> Vec<OperatorKind> {
        let mut ops: Vec<OperatorKind> = self.stages.iter().map(|_| OperatorKind::Build).collect();
        for side in &self.stages {
            ops.extend_from_slice(side.probe_operators());
        }
        ops.push(OperatorKind::Materialize);
        ops
    }

    /// Run the fused probe over `s`.
    pub fn run(&self, s: &Relation) -> Result<PipelineResult, JoinError> {
        if self.stages.is_empty() {
            return Err(JoinError::InvalidConfig {
                field: "stages",
                value: 0,
                reason: "a pipeline needs at least one build side",
            });
        }
        let cfg = match &self.config {
            Some(cfg) => cfg.clone(),
            None => self.builder.clone().build()?,
        };
        match catch_unwind(AssertUnwindSafe(|| self.run_fused(s, &cfg))) {
            Ok(res) => res,
            Err(payload) => Err(JoinError::WorkerPanicked {
                phase: crate::fault::current_phase(),
                payload: crate::fault::panic_message(payload.as_ref()),
            }),
        }
    }

    fn run_fused(&self, s: &Relation, cfg: &JoinConfig) -> Result<PipelineResult, JoinError> {
        let stages = &self.stages[..];
        let ctx = FaultCtx::begin(stages[0].algorithm, cfg);
        let mut result = JoinResult::new(stages[0].algorithm);
        result.radix_bits = stages[0].radix_bits;
        for side in stages {
            result.phases.extend(side.phases.iter().cloned());
        }
        let pool = cfg.executor();
        pool.start_recording(cfg.profile.enabled);
        let cpool = CtxPool::new(pool.as_ref(), &ctx);

        ctx.enter_phase("probe");
        let batch = cfg.pipeline_batch.max(1);
        // Per-worker staging batches, one per stage depth.
        let _batch_charge = ctx.charge(cfg.threads * stages.len() * batch * 8)?;
        let s_tuples = s.tuples();
        let unique = cfg.unique_build_keys;
        let active = pool.workers().clamp(1, s_tuples.len().max(1));
        let start = Instant::now();
        let outs: Vec<(JoinChecksum, Vec<u64>)> = broadcast_map(&cpool, active, |w| {
            let range = chunk_range(s_tuples.len(), active, w);
            let mut rid = range.start as u32;
            let mut c = JoinChecksum::new();
            let mut inter = vec![0u64; stages.len() - 1];
            let mut input: Vec<Tuple> = Vec::with_capacity(batch);
            for block in s_tuples[range].chunks(MORSEL) {
                if ctx.should_stop() {
                    return (c, inter);
                }
                for sub in block.chunks(batch) {
                    input.clear();
                    for t in sub {
                        // Late materialization: only (key, rid) flows.
                        input.push(Tuple::new(t.key, rid));
                        rid += 1;
                    }
                    cascade_batch(
                        stages, 0, &input, unique, batch, s_tuples, &mut c, &mut inter,
                    );
                }
            }
            (c, inter)
        });
        let probe_wall = start.elapsed();

        let mut checksum = JoinChecksum::new();
        let mut inter = vec![0u64; stages.len() - 1];
        for (c, i) in outs {
            checksum.merge(c);
            for (total, part) in inter.iter_mut().zip(i) {
                *total += part;
            }
        }

        // Cost-model view: per stage, the tuples that actually reached it
        // probing that stage's resident structure.
        let mut models = Vec::with_capacity(stages.len());
        let mut tuples_in = s_tuples.len();
        for (k, side) in stages.iter().enumerate() {
            models.push(FusedStageModel {
                tuples_in,
                table_bytes: side.memory_bytes as f64,
                accesses_per_probe: side.accesses_per_probe,
                cpu_per_tuple: side.cpu_per_probe,
            });
            if k < inter.len() {
                tuples_in = inter[k] as usize;
            }
        }
        let specs = spec::fused_probe_specs(cfg, s.len(), s.placement(), &models);
        let order: Vec<usize> = (0..specs.len()).collect();
        let (probe_sim, probe_phase) = spec::run_phase(cfg, &specs, &order);
        result.set_checksum(checksum);
        result.push_phase_pool("probe", probe_wall, probe_sim, &pool);
        if cfg.keep_timelines {
            result.timelines.push(("probe", probe_phase));
        }
        ctx.checkpoint(&result)?;

        let intermediate_matches: u64 = inter.iter().sum();
        Ok(PipelineResult {
            matches: result.matches,
            checksum: result.checksum,
            phases: result.phases,
            intermediate_matches,
            bytes_avoided: intermediate_matches * INTERMEDIATE_TUPLE_BYTES,
        })
    }
}

/// Push one batch through the stages from `depth` on. Non-sink stages
/// emit `(build_payload, rid)` into a fresh cache-resident batch (the
/// rid rides along untouched — that is the whole late-materialization
/// contract); the sink gathers `s_tuples[rid].payload` and folds into
/// the checksum.
#[allow(clippy::too_many_arguments)]
fn cascade_batch(
    stages: &[Arc<BuildSide>],
    depth: usize,
    input: &[Tuple],
    unique: bool,
    batch_cap: usize,
    s_tuples: &[Tuple],
    c: &mut JoinChecksum,
    inter: &mut [u64],
) {
    let side = &stages[depth];
    if depth + 1 == stages.len() {
        side.probe_batch(input, unique, |t, bp| {
            c.add(t.key, bp, s_tuples[t.payload as usize].payload)
        });
    } else {
        let mut out: Vec<Tuple> = Vec::with_capacity(batch_cap);
        side.probe_batch(input, unique, |t, bp| out.push(Tuple::new(bp, t.payload)));
        inter[depth] += out.len() as u64;
        for chunk in out.chunks(batch_cap) {
            cascade_batch(
                stages,
                depth + 1,
                chunk,
                unique,
                batch_cap,
                s_tuples,
                c,
                inter,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
    use mmjoin_util::Placement;

    fn cfg(threads: usize) -> JoinConfig {
        let mut cfg = JoinConfig::new(threads);
        cfg.simulate = false;
        cfg
    }

    #[test]
    fn single_stage_matches_reference_for_every_ported_driver() {
        let n = 4_000;
        let r = gen_build_dense(n, 11, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(3 * n, n, 12, Placement::Chunked { parts: 4 });
        let expect = reference_join(&r, &s);
        for alg in PORTED {
            let cfg = cfg(4);
            let side = BuildSide::prepare(alg, &r, &cfg).unwrap();
            assert_eq!(side.algorithm(), alg);
            assert!(side.memory_bytes() > 0, "{alg}");
            assert!(!side.build_phases().is_empty(), "{alg}");
            let res = Pipeline::new()
                .with_stage(side)
                .with_config(cfg)
                .run(&s)
                .unwrap();
            assert_eq!(res.matches, expect.count, "{alg}");
            assert_eq!(res.checksum, expect.digest, "{alg}");
            assert_eq!(res.intermediate_matches, 0, "{alg}: single stage");
            assert_eq!(res.bytes_avoided, 0, "{alg}");
        }
    }

    #[test]
    fn shared_build_side_probes_from_two_pipelines() {
        let n = 2_000;
        let r = gen_build_dense(n, 13, Placement::Interleaved);
        let s1 = gen_probe_fk(n, n, 14, Placement::Interleaved);
        let s2 = gen_probe_fk(2 * n, n, 15, Placement::Interleaved);
        let cfg = cfg(2);
        let side = BuildSide::prepare(Algorithm::Prl, &r, &cfg).unwrap();
        let a = Pipeline::new()
            .with_stage(Arc::clone(&side))
            .with_config(cfg.clone())
            .run(&s1)
            .unwrap();
        let b = Pipeline::new()
            .with_stage(side)
            .with_config(cfg)
            .run(&s2)
            .unwrap();
        assert_eq!(a.matches, reference_join(&r, &s1).count);
        assert_eq!(b.matches, reference_join(&r, &s2).count);
    }

    #[test]
    fn empty_pipeline_is_invalid() {
        let s = gen_probe_fk(100, 100, 16, Placement::Interleaved);
        let err = Pipeline::new().run(&s).unwrap_err();
        assert!(
            matches!(
                err,
                JoinError::InvalidConfig {
                    field: "stages",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn unported_algorithm_rejected() {
        let r = gen_build_dense(100, 17, Placement::Interleaved);
        let err = BuildSide::prepare(Algorithm::Mway, &r, &cfg(2)).unwrap_err();
        assert_eq!(
            err,
            JoinError::PipelineUnsupported {
                algorithm: Algorithm::Mway
            }
        );
    }

    #[test]
    fn operator_graph_shape() {
        let r = gen_build_dense(500, 18, Placement::Interleaved);
        let cfg = cfg(2);
        let global = BuildSide::prepare(Algorithm::Nop, &r, &cfg).unwrap();
        let parted = BuildSide::prepare(Algorithm::Pro, &r, &cfg).unwrap();
        let p = Pipeline::new().with_stage(global).with_stage(parted);
        assert_eq!(p.stage_count(), 2);
        assert_eq!(
            p.operators(),
            vec![
                OperatorKind::Build,
                OperatorKind::Build,
                OperatorKind::Probe,
                OperatorKind::Partition,
                OperatorKind::Probe,
                OperatorKind::Materialize,
            ]
        );
    }

    #[test]
    fn tiny_batches_and_empty_probe() {
        let n = 1_000;
        let r = gen_build_dense(n, 19, Placement::Interleaved);
        let s = gen_probe_fk(2 * n, n, 20, Placement::Interleaved);
        let expect = reference_join(&r, &s);
        let side = BuildSide::prepare(Algorithm::Chtj, &r, &cfg(2)).unwrap();
        for batch in [1, 7, 1024] {
            let res = Pipeline::new()
                .with_stage(Arc::clone(&side))
                .with_threads(2)
                .with_simulate(false)
                .with_batch_size(batch)
                .run(&s)
                .unwrap();
            assert_eq!(res.matches, expect.count, "batch={batch}");
            assert_eq!(res.checksum, expect.digest, "batch={batch}");
        }
        let empty = Relation::from_tuples(&[], Placement::Interleaved);
        let res = Pipeline::new()
            .with_stage(side)
            .with_config(cfg(2))
            .run(&empty)
            .unwrap();
        assert_eq!(res.matches, 0);
    }
}
