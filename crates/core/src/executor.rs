//! Persistent NUMA-aware morsel executor.
//!
//! Every thread-parallel phase of every join used to spawn its own scoped
//! threads — cheap on a laptop, but it charges thread creation to every
//! phase and makes NUMA-aware scheduling an ad-hoc property of task
//! ordering. This module replaces that with one long-lived worker pool:
//!
//! * **Workers are spawned once** per thread count (see
//!   [`Executor::shared`]) and parked on a condvar between phases. A run
//!   over all thirteen algorithms creates at most `threads` worker
//!   threads total.
//! * **One task queue per simulated NUMA node** ([`QueuePolicy`]): a
//!   morsel phase assigns each task to the queue of the node that owns
//!   its data; workers drain their home node's queue first and *steal*
//!   from remote nodes only when it runs dry. The NUMA-round-robin
//!   scheduling of the *iS join variants is thereby a queue-assignment
//!   policy of the executor, not a property of task insertion order.
//! * **Per-phase counters** ([`ExecCounters`]): tasks executed, steals,
//!   and per-worker idle time at the phase barrier, drained by the join
//!   drivers into each [`crate::stats::PhaseStat`].
//! * **Panic containment**: the pool is a process-lifetime resource
//!   shared by every join, so a panicking morsel task must not take it
//!   down. Every phase closure runs under `catch_unwind`; a panic is
//!   recorded, the phase barrier still completes, and the submitting
//!   thread re-raises the collected messages as a
//!   [`crate::fault::WorkerPanic`] (which `plan::dispatch` converts to
//!   `JoinError::WorkerPanicked`). Workers never die from a task panic;
//!   should a thread die anyway, the barrier detects it (bounded waits +
//!   per-worker completion epochs) and [`Executor::heal`] respawns it
//!   before the next phase.
//!
//! # The phase barrier
//!
//! The lock-free tables (`ConcurrentLinearTable`, CHT bulkload) publish
//! their writes through the *phase barrier*: probes use relaxed loads and
//! are correct only because every build write happens-before every probe.
//! With scoped threads that edge came from `std::thread::scope`'s join.
//! Here it comes from the control mutex: a worker finishes its closure,
//! locks the mutex, and decrements `remaining` (releasing its writes when
//! the mutex unlocks); [`Executor::broadcast`] returns only after
//! re-acquiring that mutex and observing `remaining == 0`, which makes
//! every worker's writes visible to the caller — the same happens-before
//! edge, without the thread spawn/join. A panicking worker still
//! decrements `remaining` (after `catch_unwind`), so the barrier — and
//! the happens-before edge for the workers that *did* finish — survives
//! any task failure.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use mmjoin_partition::task::node_of_partition;
use mmjoin_util::perf::{CounterDelta, CounterGroup};
use mmjoin_util::pool::{lock_recover, ExecCounters, WorkerPhaseStat, WorkerPool};

use crate::fault::{panic_message, WorkerPanic};

/// How long the barrier waits between checks for dead worker threads. A
/// live pool signals `done_cv` long before this; the timeout only bounds
/// how long a crashed worker (a thread that died outside a task panic —
/// task panics are caught) can stall the barrier.
const BARRIER_POLL: Duration = Duration::from_millis(50);

/// How a morsel phase distributes its tasks over queues.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueuePolicy {
    /// One queue shared by all workers, drained in submission order —
    /// the original PR*/CPR* sequential scheduling.
    Shared,
    /// One queue per simulated NUMA node. Each task goes to the queue of
    /// the node owning its partition (block allocation, see
    /// [`node_of_partition`]); workers drain their home node first and
    /// steal from remote nodes only when home is dry. This is the
    /// improved scheduling of PROiS/PRLiS/PRAiS.
    NumaLocal {
        /// Simulated NUMA nodes (queues).
        nodes: usize,
    },
}

/// Assign `order` (a filtered, ordered list of partition indices out of
/// `parts` total) to queues according to `policy`.
pub fn build_queues(order: &[usize], parts: usize, policy: QueuePolicy) -> Vec<Vec<usize>> {
    match policy {
        QueuePolicy::Shared => vec![order.to_vec()],
        QueuePolicy::NumaLocal { nodes } => {
            let nodes = nodes.max(1);
            let mut queues: Vec<Vec<usize>> = vec![Vec::new(); nodes];
            for &p in order {
                queues[node_of_partition(p, parts, nodes)].push(p);
            }
            queues
        }
    }
}

/// Worker threads ever spawned by any [`Executor`] in this process —
/// lets tests assert that repeated joins reuse pools instead of
/// respawning.
static TOTAL_SPAWNED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside executor worker threads; a broadcast issued from one
    /// (which would deadlock on the single-phase control) runs inline
    /// instead.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Each worker thread's native PMU counter group, opened lazily on
    /// the first profiled phase it runs (perf fds count the opening
    /// thread, so the group must be per-thread). `None` when the host
    /// exposes no counters — spans then carry `CounterDelta::none()`.
    static TL_COUNTERS: std::cell::OnceCell<Option<CounterGroup>> =
        const { std::cell::OnceCell::new() };
}

/// Lifetime-erased pointer to the phase closure. Safe because
/// `broadcast` does not return until every worker has finished with it
/// and the control slot is cleared.
struct Job(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is Sync, and the pointer only crosses threads
// while `broadcast` keeps the original reference alive.
unsafe impl Send for Job {}

struct Control {
    job: Option<Job>,
    /// Bumped once per phase; workers run the job when they observe a
    /// newer epoch than the last one they executed.
    epoch: u64,
    /// Workers still running the current phase.
    remaining: usize,
    /// Phase start, for per-worker finish offsets (idle accounting).
    start: Instant,
    /// Whether workers should take PMU snapshots for the current epoch.
    profile: bool,
    /// Panic messages captured from workers during the current phase.
    panics: Vec<String>,
    shutdown: bool,
}

struct Shared {
    ctl: Mutex<Control>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// The submitting thread waits here for `remaining == 0`.
    done_cv: Condvar,
    /// Per-worker phase finish time, ns since phase start.
    finish_ns: Vec<AtomicU64>,
    /// Last epoch each worker completed (written in the same `ctl`
    /// critical section as the `remaining` decrement). The barrier's
    /// dead-worker check uses it to account a crashed thread exactly
    /// once: a dead worker whose `done_epoch` already equals the current
    /// epoch was either accounted by a previous poll or finished the
    /// phase before dying.
    done_epoch: Vec<AtomicU64>,
    /// Morsels each worker ran in the current `run_morsels` phase
    /// (stored once per worker at the end of its drain loop; reset by
    /// `broadcast_inner` when profiling).
    worker_tasks: Vec<AtomicU64>,
    /// Morsels each worker stole in the current `run_morsels` phase.
    worker_steals: Vec<AtomicU64>,
    /// Per-worker PMU deltas for the current profiled phase.
    deltas: Vec<Mutex<CounterDelta>>,
}

/// Span-recording state for one profiling window (normally one join):
/// the common time base and the spans accumulated since the last drain.
struct Recording {
    start: Instant,
    spans: Vec<WorkerPhaseStat>,
}

/// A persistent pool of `workers` threads executing one phase at a time.
///
/// Prefer [`Executor::shared`] (one pool per thread count per process);
/// [`Executor::new`] spawns a private pool whose threads are joined on
/// drop.
pub struct Executor {
    shared: Arc<Shared>,
    workers: usize,
    /// Serializes phases from different submitting threads.
    submit: Mutex<()>,
    /// Accumulated counters since the last [`Executor::drain_counters`].
    counters: Mutex<ExecCounters>,
    /// Whether phases record per-worker spans + PMU deltas. One atomic
    /// load per phase when off — the zero-cost disabled path.
    profile: AtomicBool,
    /// Spans accumulated since [`Executor::start_recording`].
    recording: Mutex<Recording>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn spawn_worker(shared: &Arc<Shared>, w: usize, start_epoch: u64) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    TOTAL_SPAWNED.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name(format!("mmjoin-exec-{w}"))
        .spawn(move || worker_loop(&shared, w, start_epoch))
        .expect("spawn executor worker")
}

impl Executor {
    /// Spawn a private pool with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            ctl: Mutex::new(Control {
                job: None,
                epoch: 0,
                remaining: 0,
                start: Instant::now(),
                profile: false,
                panics: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            finish_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            done_epoch: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            worker_tasks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            worker_steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            deltas: (0..workers)
                .map(|_| Mutex::new(CounterDelta::none()))
                .collect(),
        });
        let handles = (0..workers).map(|w| spawn_worker(&shared, w, 0)).collect();
        Executor {
            shared,
            workers,
            submit: Mutex::new(()),
            counters: Mutex::new(ExecCounters::new()),
            profile: AtomicBool::new(false),
            recording: Mutex::new(Recording {
                start: Instant::now(),
                spans: Vec::new(),
            }),
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool for `workers` threads. Pools are created
    /// lazily, cached forever, and shared by every join using the same
    /// thread count — repeated joins never respawn workers.
    pub fn shared(workers: usize) -> Arc<Executor> {
        static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<Executor>>>> = OnceLock::new();
        let workers = workers.max(1);
        let reg = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        Arc::clone(
            lock_recover(reg)
                .entry(workers)
                .or_insert_with(|| Arc::new(Executor::new(workers))),
        )
    }

    /// Number of worker threads this pool spawned (== `workers()`).
    pub fn spawned_workers(&self) -> usize {
        self.workers
    }

    /// Worker threads ever spawned by all executors in this process.
    pub fn total_threads_spawned() -> usize {
        TOTAL_SPAWNED.load(Ordering::Relaxed)
    }

    /// Take the counters accumulated since the last drain (phase
    /// boundaries in the join drivers).
    pub fn drain_counters(&self) -> ExecCounters {
        std::mem::take(&mut *lock_recover(&self.counters))
    }

    /// Start a fresh recording window (a join): clear any stale counters
    /// and spans and, when `profile` is set, record a [`WorkerPhaseStat`]
    /// span per worker per phase — timestamps relative to this call, plus
    /// native PMU deltas where the host exposes counters.
    ///
    /// The window belongs to the pool, not to a join: two joins profiled
    /// concurrently on the *same* pool interleave their spans, the same
    /// (documented) sharing the aggregate counters already have. When
    /// `profile` is false this leaves the pool on its zero-cost path —
    /// phases pay one relaxed atomic load.
    pub fn start_recording(&self, profile: bool) {
        self.profile.store(profile, Ordering::Relaxed);
        {
            let mut rec = lock_recover(&self.recording);
            rec.start = Instant::now();
            rec.spans.clear();
        }
        self.drain_counters();
    }

    /// Take the spans recorded since the last drain (phase boundaries in
    /// the join drivers). Empty when profiling is off.
    pub fn drain_spans(&self) -> Vec<WorkerPhaseStat> {
        std::mem::take(&mut lock_recover(&self.recording).spans)
    }

    /// Whether span recording is currently on.
    pub fn profiling(&self) -> bool {
        self.profile.load(Ordering::Relaxed)
    }

    /// Respawn any worker thread that has died. Task panics are caught
    /// in [`worker_loop`] and never kill a worker, so this is a backstop
    /// for threads lost to causes the pool cannot intercept; it is
    /// called after any phase that reported failures. Holding the submit
    /// lock keeps a phase from starting mid-respawn, so a replacement
    /// worker's starting epoch is always current.
    pub fn heal(&self) {
        let _phase = lock_recover(&self.submit);
        let epoch = lock_recover(&self.shared.ctl).epoch;
        let mut handles = lock_recover(&self.handles);
        for (w, h) in handles.iter_mut().enumerate() {
            if h.is_finished() {
                let fresh = spawn_worker(&self.shared, w, epoch);
                let dead = std::mem::replace(h, fresh);
                let _ = dead.join();
            }
        }
    }

    /// Run a morsel phase: workers drain `queues` (one per NUMA node;
    /// a single queue means shared scheduling), invoking `f(worker,
    /// task)` for every task exactly once. Worker `w`'s home node is
    /// `w * nodes / workers`; it pops home tasks first and steals from
    /// the other nodes in ring order once home is dry. Task and steal
    /// counts flow into the drained counters.
    ///
    /// # Panics
    ///
    /// If any task panics, the phase still runs to completion on the
    /// surviving workers and the collected messages are re-raised here
    /// as a [`WorkerPanic`] (converted to `JoinError::WorkerPanicked` at
    /// the dispatch boundary).
    pub fn run_morsels(&self, queues: &[Vec<usize>], f: &(dyn Fn(usize, usize) + Sync)) {
        let nodes = queues.len().max(1);
        let workers = self.workers;
        let cursors: Vec<AtomicUsize> = (0..nodes).map(|_| AtomicUsize::new(0)).collect();
        let tasks = AtomicU64::new(0);
        let steals = AtomicU64::new(0);
        let outcome = self.broadcast_inner(
            &|w| {
                let home = (w * nodes / workers).min(nodes - 1);
                let mut my_tasks = 0u64;
                let mut my_steals = 0u64;
                for i in 0..nodes {
                    let node = (home + i) % nodes;
                    let queue = match queues.get(node) {
                        Some(q) => q,
                        None => continue,
                    };
                    loop {
                        let idx = cursors[node].fetch_add(1, Ordering::Relaxed);
                        match queue.get(idx) {
                            Some(&task) => {
                                f(w, task);
                                my_tasks += 1;
                                if node != home {
                                    my_steals += 1;
                                }
                            }
                            None => break,
                        }
                    }
                }
                tasks.fetch_add(my_tasks, Ordering::Relaxed);
                steals.fetch_add(my_steals, Ordering::Relaxed);
                // Per-worker totals for span recording (one store per
                // worker per phase; read only when profiling).
                self.shared.worker_tasks[w].store(my_tasks, Ordering::Relaxed);
                self.shared.worker_steals[w].store(my_steals, Ordering::Relaxed);
            },
            false,
        );
        {
            let mut c = lock_recover(&self.counters);
            c.tasks += tasks.load(Ordering::Relaxed);
            c.steals += steals.load(Ordering::Relaxed);
        }
        if let Err(panics) = outcome {
            self.heal();
            std::panic::panic_any(WorkerPanic(panics));
        }
    }

    /// Run one phase; `Err` carries the panic messages of every worker
    /// task that panicked (the phase barrier completed regardless).
    fn broadcast_inner(
        &self,
        f: &(dyn Fn(usize) + Sync),
        count_tasks: bool,
    ) -> Result<(), Vec<String>> {
        // A broadcast from inside a worker thread (nested phase) cannot
        // wait on the pool it is part of; run the phase inline. Semantics
        // are preserved (every index invoked once, writes visible to the
        // continuation), only parallelism is lost. An inline panic
        // unwinds into the enclosing worker task's own catch_unwind.
        // When profiling, an inline nested phase emits no spans of its
        // own — its time and counters fold into the enclosing worker's
        // span (its tasks still reach the aggregate counters).
        if IN_WORKER.with(|c| c.get()) {
            for w in 0..self.workers {
                f(w);
            }
            if count_tasks {
                lock_recover(&self.counters).tasks += self.workers as u64;
            }
            return Ok(());
        }

        let _phase = lock_recover(&self.submit);
        let profile = self.profile.load(Ordering::Relaxed);
        for slot in &self.shared.finish_ns {
            slot.store(0, Ordering::Relaxed);
        }
        if profile {
            for w in 0..self.workers {
                self.shared.worker_tasks[w].store(0, Ordering::Relaxed);
                self.shared.worker_steals[w].store(0, Ordering::Relaxed);
                *lock_recover(&self.shared.deltas[w]) = CounterDelta::none();
            }
        }
        // SAFETY: only the lifetime is erased; the job slot is cleared
        // below before `f` can go out of scope.
        let erased: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), _>(
                f as *const (dyn Fn(usize) + Sync),
            )
        };
        let (epoch, phase_start) = {
            let mut ctl = lock_recover(&self.shared.ctl);
            ctl.job = Some(Job(erased));
            ctl.epoch += 1;
            ctl.remaining = self.workers;
            ctl.start = Instant::now();
            ctl.profile = profile;
            ctl.panics.clear();
            self.shared.work_cv.notify_all();
            (ctl.epoch, ctl.start)
        };
        let panics = {
            // Phase barrier: re-acquiring `ctl` after the last worker's
            // decrement makes all workers' writes visible here. The wait
            // is bounded so a crashed worker thread cannot wedge the
            // barrier: on each timeout, workers that are dead and never
            // completed this epoch are accounted as finished (with a
            // synthetic panic message) exactly once.
            let mut ctl = lock_recover(&self.shared.ctl);
            while ctl.remaining > 0 {
                let (guard, timeout) = self
                    .shared
                    .done_cv
                    .wait_timeout(ctl, BARRIER_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
                ctl = guard;
                if !timeout.timed_out() || ctl.remaining == 0 {
                    continue;
                }
                // `is_finished` needs the handles lock; never hold it
                // together with `ctl`.
                drop(ctl);
                let dead: Vec<usize> = {
                    let handles = lock_recover(&self.handles);
                    handles
                        .iter()
                        .enumerate()
                        .filter(|(_, h)| h.is_finished())
                        .map(|(w, _)| w)
                        .collect()
                };
                ctl = lock_recover(&self.shared.ctl);
                for w in dead {
                    // A worker that finished this epoch before dying (or
                    // was accounted by an earlier poll) has done_epoch ==
                    // epoch; only count the ones that never completed.
                    if self.shared.done_epoch[w].load(Ordering::Relaxed) < epoch {
                        self.shared.done_epoch[w].store(epoch, Ordering::Relaxed);
                        ctl.remaining = ctl.remaining.saturating_sub(1);
                        ctl.panics.push(format!("worker {w} thread died mid-phase"));
                    }
                }
            }
            ctl.job = None;
            std::mem::take(&mut ctl.panics)
        };
        let finishes: Vec<u64> = self
            .shared
            .finish_ns
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let slowest = finishes.iter().copied().max().unwrap_or(0);
        let idle: u64 = finishes.iter().map(|&t| slowest - t).sum();
        let mut c = lock_recover(&self.counters);
        c.idle_ns += idle;
        if count_tasks {
            c.tasks += self.workers as u64;
        }
        drop(c);
        if profile {
            // One span per worker per broadcast. For a plain broadcast
            // each worker ran exactly one task; for a morsel phase the
            // per-worker totals were stored by the drain loop — either
            // way the spans of a phase sum to its ExecCounters.
            let mut rec = lock_recover(&self.recording);
            let start_ns = phase_start
                .checked_duration_since(rec.start)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            for (w, &dur_ns) in finishes.iter().enumerate() {
                let counters = std::mem::take(&mut *lock_recover(&self.shared.deltas[w]));
                let (tasks, steals) = if count_tasks {
                    (1, 0)
                } else {
                    (
                        self.shared.worker_tasks[w].load(Ordering::Relaxed),
                        self.shared.worker_steals[w].load(Ordering::Relaxed),
                    )
                };
                rec.spans.push(WorkerPhaseStat {
                    worker: w,
                    start_ns,
                    dur_ns,
                    tasks,
                    steals,
                    counters,
                });
            }
        }
        if panics.is_empty() {
            Ok(())
        } else {
            Err(panics)
        }
    }
}

impl WorkerPool for Executor {
    fn workers(&self) -> usize {
        self.workers
    }

    fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        if let Err(panics) = self.broadcast_inner(f, true) {
            self.heal();
            std::panic::panic_any(WorkerPanic(panics));
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut ctl = lock_recover(&self.shared.ctl);
            ctl.shutdown = true;
            // Wake parked workers *and* any stranded barrier waiter (a
            // foreign thread blocked in broadcast while a worker died
            // would otherwise stall shutdown until its poll timeout).
            self.shared.work_cv.notify_all();
            self.shared.done_cv.notify_all();
        }
        for h in lock_recover(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, w: usize, start_epoch: u64) {
    IN_WORKER.with(|c| c.set(true));
    let mut seen_epoch = start_epoch;
    loop {
        let (job, start, profile) = {
            let mut ctl = lock_recover(&shared.ctl);
            loop {
                if ctl.shutdown {
                    return;
                }
                if ctl.epoch > seen_epoch {
                    seen_epoch = ctl.epoch;
                    let job = ctl.job.as_ref().expect("phase epoch without job").0;
                    break (job, ctl.start, ctl.profile);
                }
                ctl = shared
                    .work_cv
                    .wait(ctl)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: `broadcast_inner` keeps the closure alive until every
        // worker has decremented `remaining` for this epoch.
        let f: &(dyn Fn(usize) + Sync) = unsafe { &*job };
        // Native counter snapshot around the task, only when profiling —
        // the disabled path never touches the perf module. The group is
        // opened lazily once per worker thread; on hosts without PMU
        // access it stays `None` and the span carries empty deltas.
        let snap = if profile {
            TL_COUNTERS.with(|c| {
                c.get_or_init(CounterGroup::open)
                    .as_ref()
                    .map(|g| g.snapshot())
            })
        } else {
            None
        };
        // Contain task panics: the phase barrier must complete even when
        // a task fails, or every later join on this shared pool would
        // deadlock. The unwind cannot leave `f`'s data in a state the
        // caller misreads — the submitting thread re-raises the panic
        // before looking at any phase output.
        let caught = catch_unwind(AssertUnwindSafe(|| f(w))).err();
        shared.finish_ns[w].store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if profile {
            let delta = TL_COUNTERS.with(|c| {
                match (c.get_or_init(CounterGroup::open).as_ref(), snap.as_ref()) {
                    (Some(g), Some(s)) => g.delta_since(s),
                    _ => CounterDelta::none(),
                }
            });
            *lock_recover(&shared.deltas[w]) = delta;
        }
        let mut ctl = lock_recover(&shared.ctl);
        if let Some(payload) = caught {
            ctl.panics.push(panic_message(payload.as_ref()));
        }
        shared.done_epoch[w].store(seen_epoch, Ordering::Relaxed);
        ctl.remaining = ctl.remaining.saturating_sub(1);
        if ctl.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::pool::broadcast_map;

    #[test]
    fn broadcast_hits_every_worker_exactly_once() {
        let exec = Executor::new(6);
        let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            exec.broadcast(&|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 10);
        }
    }

    #[test]
    fn barrier_publishes_writes() {
        // Relaxed writes inside the phase must be visible after broadcast
        // returns — the edge every lock-free table relies on.
        let exec = Executor::new(8);
        let cells: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        for round in 1..50u64 {
            exec.broadcast(&|w| {
                cells[w].store(round, Ordering::Relaxed);
            });
            for c in &cells {
                assert_eq!(c.load(Ordering::Relaxed), round);
            }
        }
    }

    #[test]
    fn pool_reuse_does_not_respawn() {
        // Same thread count → same pool instance (other tests spawn pools
        // concurrently, so assert identity rather than the global count).
        let exec = Executor::shared(3);
        for _ in 0..5 {
            let again = Executor::shared(3);
            assert!(Arc::ptr_eq(&exec, &again));
            again.broadcast(&|_| {});
        }
        assert_eq!(exec.spawned_workers(), 3);
    }

    #[test]
    fn morsels_cover_all_tasks_and_count_steals() {
        let exec = Executor::new(4);
        exec.drain_counters();
        // Heavily skewed queues: all tasks on node 0 of 2 — workers homed
        // on node 1 must steal everything they run.
        let queues = vec![(0..64).collect::<Vec<_>>(), Vec::new()];
        let done: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        exec.run_morsels(&queues, &|_, t| {
            done[t].fetch_add(1, Ordering::Relaxed);
        });
        for d in &done {
            assert_eq!(d.load(Ordering::Relaxed), 1);
        }
        let c = exec.drain_counters();
        assert_eq!(c.tasks, 64);
        // Node-1 workers can only have run stolen tasks.
        assert!(c.steals <= 64);
    }

    #[test]
    fn queue_policy_buckets_by_node() {
        let qs = build_queues(
            &[0, 1, 2, 3, 4, 5, 6, 7],
            8,
            QueuePolicy::NumaLocal { nodes: 4 },
        );
        assert_eq!(qs, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]);
        let qs = build_queues(&[3, 1, 2], 8, QueuePolicy::Shared);
        assert_eq!(qs, vec![vec![3, 1, 2]]);
    }

    #[test]
    fn counters_accumulate_and_drain() {
        let exec = Executor::new(2);
        exec.drain_counters();
        exec.broadcast(&|_| {});
        exec.broadcast(&|_| {});
        let c = exec.drain_counters();
        assert_eq!(c.tasks, 4);
        assert_eq!(exec.drain_counters(), ExecCounters::new());
    }

    #[test]
    fn works_as_worker_pool_for_broadcast_map() {
        let exec = Executor::new(5);
        let out = broadcast_map(&exec, 5, |w| w * w);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn nested_broadcast_runs_inline() {
        let exec = Executor::new(2);
        let inner_hits = AtomicUsize::new(0);
        exec.broadcast(&|w| {
            if w == 0 {
                // A phase nested inside a worker must not deadlock.
                exec.broadcast(&|_| {
                    inner_hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn worker_panic_completes_barrier_and_pool_survives() {
        let exec = Executor::new(4);
        let survivors = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.broadcast(&|w| {
                if w == 2 {
                    panic!("injected failure on worker {w}");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }))
        .expect_err("the panic must surface on the submitting thread");
        let wp = caught
            .downcast_ref::<WorkerPanic>()
            .expect("payload is WorkerPanic");
        assert_eq!(wp.0.len(), 1);
        assert!(wp.0[0].contains("injected failure on worker 2"));
        // The barrier completed: the other three workers ran to the end.
        assert_eq!(survivors.load(Ordering::Relaxed), 3);
        // The same pool keeps working — no dead workers, no poison.
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        exec.broadcast(&|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn all_workers_panicking_collects_every_message() {
        let exec = Executor::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.broadcast(&|w| panic!("w{w} down"));
        }))
        .expect_err("panic expected");
        let wp = caught
            .downcast_ref::<WorkerPanic>()
            .expect("payload is WorkerPanic");
        assert_eq!(wp.0.len(), 3);
        let mut msgs = wp.0.clone();
        msgs.sort();
        assert_eq!(msgs, vec!["w0 down", "w1 down", "w2 down"]);
        exec.broadcast(&|_| {});
    }

    #[test]
    fn run_morsels_contains_task_panics() {
        let exec = Executor::new(4);
        exec.drain_counters();
        let queues = vec![(0..32).collect::<Vec<_>>()];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.run_morsels(&queues, &|_, t| {
                if t == 17 {
                    panic!("morsel 17 exploded");
                }
            });
        }))
        .expect_err("panic expected");
        assert!(caught.downcast_ref::<WorkerPanic>().is_some());
        // Pool is reusable and morsel scheduling still covers everything.
        let done: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        exec.run_morsels(&queues, &|_, t| {
            done[t].fetch_add(1, Ordering::Relaxed);
        });
        for d in &done {
            assert_eq!(d.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn spans_empty_when_profiling_off() {
        let exec = Executor::new(3);
        exec.start_recording(false);
        exec.broadcast(&|_| {});
        exec.run_morsels(&[(0..8).collect()], &|_, _| {});
        assert!(exec.drain_spans().is_empty());
        assert!(!exec.profiling());
    }

    #[test]
    fn profiled_spans_sum_to_counters() {
        let exec = Executor::new(4);
        exec.start_recording(true);
        assert!(exec.profiling());
        exec.broadcast(&|_| {});
        let queues = vec![(0..32).collect::<Vec<_>>(), Vec::new()];
        exec.run_morsels(&queues, &|_, _| {
            std::hint::black_box((0..500).sum::<u64>());
        });
        let c = exec.drain_counters();
        let spans = exec.drain_spans();
        // One span per worker per broadcast: one plain + one morsel phase.
        assert_eq!(spans.len(), 2 * 4);
        let span_tasks: u64 = spans.iter().map(|s| s.tasks).sum();
        let span_steals: u64 = spans.iter().map(|s| s.steals).sum();
        assert_eq!(
            span_tasks, c.tasks,
            "span tasks must sum to the phase total"
        );
        assert_eq!(span_steals, c.steals);
        assert!(span_steals <= span_tasks);
        for s in &spans {
            assert!(s.worker < 4);
        }
        // Timestamps are relative to start_recording and ordered: the
        // second broadcast starts no earlier than the first.
        let first_start = spans[0].start_ns;
        let second_start = spans[spans.len() - 1].start_ns;
        assert!(second_start >= first_start);
        exec.start_recording(false);
    }

    #[test]
    fn start_recording_clears_stale_spans() {
        let exec = Executor::new(2);
        exec.start_recording(true);
        exec.broadcast(&|_| {});
        // A fresh window drops anything the last join left behind.
        exec.start_recording(true);
        assert!(exec.drain_spans().is_empty());
        exec.broadcast(&|_| {});
        assert_eq!(exec.drain_spans().len(), 2);
        exec.start_recording(false);
    }

    #[test]
    fn heal_is_a_noop_on_a_healthy_pool() {
        let exec = Executor::new(4);
        let before = Executor::total_threads_spawned();
        exec.heal();
        assert_eq!(Executor::total_threads_spawned(), before);
        exec.broadcast(&|_| {});
    }
}
