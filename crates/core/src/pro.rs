//! The PR* and CPR* families.
//!
//! * `join_pro` — PRO/PRL/PRA and their improved-scheduling variants
//!   PROiS/PRLiS/PRAiS: one-pass parallel radix partitioning with SWWCB +
//!   streaming into a contiguous (interleaved) buffer, then independent
//!   co-partition joins pulled from a task queue. The only differences
//!   inside the family are the per-partition table and the queue order
//!   (Sections 5.1, 5.2, 6.2).
//! * `join_cpr` — CPRL/CPRA (Section 6.1): chunked partitioning with no
//!   global histogram; the join phase gathers every partition's chunk
//!   slices (large sequential, possibly remote reads) instead of having
//!   partitioned them with random remote writes.

use std::time::Instant;

use mmjoin_hashtable::{
    ArrayTable, IdentityHash, JoinTable, StChainedTable, StLinearTable, TableSpec,
};
use mmjoin_partition::{
    chunked_partition_on, partition_parallel_on, task_order, ChunkedPartitions,
    PartitionedRelation, RadixFn, ScatterMode, ScheduleOrder,
};
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::tuple::Tuple;
use mmjoin_util::Relation;

use crate::config::{JoinConfig, TableKind};
use crate::exec::join_morsels;
use crate::executor::{Executor, QueuePolicy};
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::JoinError;
use crate::spec::{self, ops, PartitionLayout, PartitionWrites};
use crate::stats::JoinResult;
use crate::Algorithm;

/// Per-tuple CPU cost of build/probe for a table kind.
pub(crate) fn table_cpu(kind: TableKind) -> (f64, f64) {
    match kind {
        TableKind::Chained | TableKind::Linear => (ops::BUILD, ops::PROBE),
        TableKind::Array => (ops::ARRAY, ops::ARRAY),
    }
}

/// Approximate per-build-tuple table footprint for the cost model.
pub(crate) fn table_bytes_per_tuple(
    kind: TableKind,
    domain: usize,
    bits: u32,
    r_len: usize,
) -> f64 {
    match kind {
        // 32-byte bucket holds 2 tuples at the sized load factor.
        TableKind::Chained => 16.0,
        // next_pow2(2n) 8-byte slots.
        TableKind::Linear => 16.0,
        TableKind::Array => {
            let slots = (domain >> bits).max(1) as f64 + 2.0;
            let avg_part = (r_len as f64 / (1u64 << bits) as f64).max(1.0);
            slots * 4.0 / avg_part
        }
    }
}

/// Build a table of `kind` over `r` slices and probe with `s` slices.
/// `unique` selects first-match probes (the study's PK assumption).
fn join_one<T: JoinTable>(
    spec: &TableSpec,
    unique: bool,
    r_slices: &mut dyn Iterator<Item = &[Tuple]>,
    s_slices: &mut dyn Iterator<Item = &[Tuple]>,
    c: &mut JoinChecksum,
) {
    let mut table = T::with_spec(spec);
    for slice in r_slices {
        table.insert_batch(slice);
    }
    for slice in s_slices {
        table.probe_batch(slice, unique, |t, bp| c.add(t.key, bp, t.payload));
    }
}

/// Dispatch on the table kind (monomorphized join kernels).
pub(crate) fn join_co_partition(
    kind: TableKind,
    spec: &TableSpec,
    unique: bool,
    r_slices: &mut dyn Iterator<Item = &[Tuple]>,
    s_slices: &mut dyn Iterator<Item = &[Tuple]>,
    c: &mut JoinChecksum,
) {
    match kind {
        TableKind::Chained => {
            join_one::<StChainedTable<IdentityHash>>(spec, unique, r_slices, s_slices, c)
        }
        TableKind::Linear => {
            join_one::<StLinearTable<IdentityHash>>(spec, unique, r_slices, s_slices, c)
        }
        TableKind::Array => join_one::<ArrayTable>(spec, unique, r_slices, s_slices, c),
    }
}

/// Table spec for partition `p` with `r_len` build tuples in it.
pub(crate) fn spec_for(kind: TableKind, bits: u32, domain: usize, part_r_len: usize) -> TableSpec {
    match kind {
        TableKind::Array => TableSpec::array(bits, domain),
        // Hash on the bits above the partition digits, or identity
        // hashing would send every key of the partition to one bucket.
        _ => TableSpec::hashed_partition(part_r_len.max(1), bits),
    }
}

pub(crate) fn radix_bits(cfg: &JoinConfig, kind: TableKind, r_len: usize) -> u32 {
    match kind {
        TableKind::Array => cfg.bits_for_array_tables(r_len),
        _ => cfg.bits_for_hash_tables(r_len),
    }
}

/// PRO family: contiguous partitioning + task-queue co-partition joins.
pub fn join_pro(
    r: &Relation,
    s: &Relation,
    cfg: &JoinConfig,
    kind: TableKind,
    improved_sched: bool,
) -> Result<JoinResult, JoinError> {
    let alg = match (kind, improved_sched) {
        (TableKind::Chained, false) => Algorithm::Pro,
        (TableKind::Linear, false) => Algorithm::Prl,
        (TableKind::Array, false) => Algorithm::Pra,
        (TableKind::Chained, true) => Algorithm::ProIs,
        (TableKind::Linear, true) => Algorithm::PrlIs,
        (TableKind::Array, true) => Algorithm::PraIs,
    };
    let ctx = FaultCtx::begin(alg, cfg);
    let mut result = JoinResult::new(alg);
    let bits = radix_bits(cfg, kind, r.len());
    result.radix_bits = Some(bits);
    let f = RadixFn::new(bits);
    let parts = f.fanout();
    let domain = cfg.domain(r.len());

    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    // Partition phase (R then S, like the original driver).
    ctx.enter_phase("partition");
    // Partitioned copies of both inputs (8 B/tuple) plus the per-worker
    // SWWCB pools (one cache line per partition per worker).
    let _part_charge = ctx.charge((r.len() + s.len()) * 8 + cfg.threads * parts * 64)?;
    let start = Instant::now();
    let pr = partition_parallel_on(r.tuples(), f, &cpool, ScatterMode::Swwcb);
    let ps = partition_parallel_on(s.tuples(), f, &cpool, ScatterMode::Swwcb);
    let part_wall = start.elapsed();
    let mut part_sim = 0.0;
    for (rel, len) in [(r, r.len()), (s, s.len())] {
        let specs = spec::partition_pass_specs(
            cfg,
            len,
            rel.placement(),
            parts,
            true,
            PartitionWrites::GlobalInterleaved,
        );
        let order: Vec<usize> = (0..specs.len()).collect();
        let (t, sim) = spec::run_phase(cfg, &specs, &order);
        part_sim += t;
        if cfg.keep_timelines {
            result.timelines.push(("partition", sim));
        }
    }
    result.push_phase_pool("partition", part_wall, part_sim, &pool);
    ctx.checkpoint(&result)?;

    // Join phase. The simulator still sees the queue *insertion order*
    // (sequential vs NUMA round-robin); on the host, improved scheduling
    // is the executor's NUMA-local queue policy with work stealing.
    ctx.enter_phase("join");
    let order_kind = if improved_sched {
        ScheduleOrder::NumaRoundRobin {
            nodes: cfg.topology.nodes,
        }
    } else {
        ScheduleOrder::Sequential
    };
    let policy = if improved_sched {
        QueuePolicy::NumaLocal {
            nodes: cfg.topology.nodes,
        }
    } else {
        QueuePolicy::Shared
    };
    let order = task_order(parts, order_kind);
    let start = Instant::now();
    let checksum = run_contiguous_join_phase(
        &pool, &ctx, policy, &pr, &ps, &order, cfg, kind, bits, domain,
    );
    let join_wall = start.elapsed();
    result.set_checksum(checksum);

    let (r_sizes, s_sizes) = partition_sizes(&pr, &ps);
    let (r_sizes, s_sizes, order) = if cfg.skew_handling {
        spec::split_skewed_sizes(&r_sizes, &s_sizes, &order, cfg.sim_threads())
    } else {
        (r_sizes, s_sizes, order)
    };
    let (cpu_build, cpu_probe) = table_cpu(kind);
    let tasks = spec::join_task_specs(
        cfg,
        &r_sizes,
        &s_sizes,
        PartitionLayout::Contiguous,
        cpu_build,
        cpu_probe,
        table_bytes_per_tuple(kind, domain, bits, r.len()),
    );
    let (join_sim, sim) = spec::run_phase(cfg, &tasks, &order);
    result.push_phase_pool("join", join_wall, join_sim, &pool);
    if cfg.keep_timelines {
        result.timelines.push(("join", sim));
    }
    ctx.checkpoint(&result)?;
    Ok(result)
}

fn partition_sizes(pr: &PartitionedRelation, ps: &PartitionedRelation) -> (Vec<usize>, Vec<usize>) {
    let parts = pr.parts();
    (
        (0..parts).map(|p| pr.part_len(p)).collect(),
        (0..parts).map(|p| ps.part_len(p)).collect(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_contiguous_join_phase(
    pool: &Executor,
    ctx: &FaultCtx,
    policy: QueuePolicy,
    pr: &PartitionedRelation,
    ps: &PartitionedRelation,
    order: &[usize],
    cfg: &JoinConfig,
    kind: TableKind,
    bits: u32,
    domain: usize,
) -> JoinChecksum {
    let (queue_order, skewed) = if cfg.skew_handling {
        let s_sizes: Vec<usize> = (0..ps.parts()).map(|p| ps.part_len(p)).collect();
        let (_, skewed) = crate::skew::classify_partitions(&s_sizes, cfg.threads);
        let filtered: Vec<usize> = order
            .iter()
            .copied()
            .filter(|p| !skewed.contains(p))
            .collect();
        (filtered, skewed)
    } else {
        (order.to_vec(), Vec::new())
    };
    let mut total = join_morsels(pool, &queue_order, pr.parts(), policy, |p| {
        let mut c = JoinChecksum::new();
        if ctx.tick() {
            return c;
        }
        let spec = spec_for(kind, bits, domain, pr.part_len(p));
        let _table_charge = match ctx.try_charge(spec.table_bytes()) {
            Some(charge) => charge,
            None => return c,
        };
        join_co_partition(
            kind,
            &spec,
            cfg.unique_build_keys,
            &mut std::iter::once(pr.partition(p)),
            &mut std::iter::once(ps.partition(p)),
            &mut c,
        );
        c
    });
    // Oversized partitions: one build, all threads probing (extension —
    // the paper leaves this unexploited, Appendix A).
    for p in skewed {
        if ctx.should_stop() {
            break;
        }
        let spec = spec_for(kind, bits, domain, pr.part_len(p));
        let _table_charge = match ctx.try_charge(spec.table_bytes()) {
            Some(charge) => charge,
            None => break,
        };
        total.merge(crate::skew::join_skewed_partition(
            cfg,
            kind,
            &spec,
            &[pr.partition(p)],
            &[ps.partition(p)],
        ));
    }
    total
}

/// PRO with *two-pass* partitioning (total bits split evenly across the
/// passes) — the configuration Figure 2 compares against single-pass
/// partitioning.
pub fn join_pro_two_pass(
    r: &Relation,
    s: &Relation,
    cfg: &JoinConfig,
    kind: TableKind,
) -> Result<JoinResult, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Pro, cfg);
    let mut result = JoinResult::new(Algorithm::Pro);
    let total_bits = cfg
        .radix_bits
        .unwrap_or_else(|| radix_bits(cfg, kind, r.len()))
        .max(2);
    let bits1 = total_bits / 2;
    let bits2 = total_bits - bits1;
    result.radix_bits = Some(total_bits);
    let parts = 1usize << total_bits;
    let domain = cfg.domain(r.len());

    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    ctx.enter_phase("partition");
    // Two passes: the pass-1 output lives until pass 2 finishes, so the
    // peak holds two full copies of both inputs.
    let _part_charge = ctx.charge(2 * (r.len() + s.len()) * 8)?;
    let start = Instant::now();
    let pr = mmjoin_partition::two_pass_partition_on(
        r.tuples(),
        bits1,
        bits2,
        &cpool,
        ScatterMode::Swwcb,
    );
    let ps = mmjoin_partition::two_pass_partition_on(
        s.tuples(),
        bits1,
        bits2,
        &cpool,
        ScatterMode::Swwcb,
    );
    let part_wall = start.elapsed();
    let mut part_sim = 0.0;
    for (rel, len) in [(r, r.len()), (s, s.len())] {
        for pass_bits in [bits1, bits2] {
            let specs = spec::partition_pass_specs(
                cfg,
                len,
                rel.placement(),
                1usize << pass_bits,
                true,
                PartitionWrites::GlobalInterleaved,
            );
            let order: Vec<usize> = (0..specs.len()).collect();
            part_sim += spec::run_phase(cfg, &specs, &order).0;
        }
    }
    result.push_phase_pool("partition", part_wall, part_sim, &pool);
    ctx.checkpoint(&result)?;

    ctx.enter_phase("join");
    let order = task_order(parts, ScheduleOrder::Sequential);
    let start = Instant::now();
    let checksum = run_contiguous_join_phase(
        &pool,
        &ctx,
        QueuePolicy::Shared,
        &pr,
        &ps,
        &order,
        cfg,
        kind,
        total_bits,
        domain,
    );
    let join_wall = start.elapsed();
    result.set_checksum(checksum);
    let (r_sizes, s_sizes) = partition_sizes(&pr, &ps);
    let (cpu_build, cpu_probe) = table_cpu(kind);
    let tasks = spec::join_task_specs(
        cfg,
        &r_sizes,
        &s_sizes,
        PartitionLayout::Contiguous,
        cpu_build,
        cpu_probe,
        table_bytes_per_tuple(kind, domain, total_bits, r.len()),
    );
    let (join_sim, _) = spec::run_phase(cfg, &tasks, &order);
    result.push_phase_pool("join", join_wall, join_sim, &pool);
    ctx.checkpoint(&result)?;
    Ok(result)
}

/// CPR family: chunked partitioning + gather-style co-partition joins.
pub fn join_cpr(
    r: &Relation,
    s: &Relation,
    cfg: &JoinConfig,
    kind: TableKind,
) -> Result<JoinResult, JoinError> {
    let alg = match kind {
        TableKind::Linear => Algorithm::Cprl,
        TableKind::Array => Algorithm::Cpra,
        TableKind::Chained => Algorithm::Cprl, // not a paper variant; linear is canonical
    };
    let ctx = FaultCtx::begin(alg, cfg);
    let mut result = JoinResult::new(alg);
    let bits = radix_bits(cfg, kind, r.len());
    result.radix_bits = Some(bits);
    let f = RadixFn::new(bits);
    let parts = f.fanout();
    let domain = cfg.domain(r.len());

    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    // Chunk-local partition phase.
    ctx.enter_phase("partition");
    // Chunk-local partitioned copies plus per-worker SWWCB pools.
    let _part_charge = ctx.charge((r.len() + s.len()) * 8 + cfg.threads * parts * 64)?;
    let start = Instant::now();
    let cr = chunked_partition_on(r.tuples(), f, &cpool, ScatterMode::Swwcb);
    let cs = chunked_partition_on(s.tuples(), f, &cpool, ScatterMode::Swwcb);
    let part_wall = start.elapsed();
    let mut part_sim = 0.0;
    for (rel, len) in [(r, r.len()), (s, s.len())] {
        let specs = spec::partition_pass_specs(
            cfg,
            len,
            rel.placement(),
            parts,
            true,
            PartitionWrites::Local,
        );
        let order: Vec<usize> = (0..specs.len()).collect();
        let (t, sim) = spec::run_phase(cfg, &specs, &order);
        part_sim += t;
        if cfg.keep_timelines {
            result.timelines.push(("partition", sim));
        }
    }
    result.push_phase_pool("partition", part_wall, part_sim, &pool);
    ctx.checkpoint(&result)?;

    // Join phase: gather chunk slices per partition.
    ctx.enter_phase("join");
    let order = task_order(parts, ScheduleOrder::Sequential);
    let start = Instant::now();
    let checksum = run_chunked_join_phase(
        &pool,
        &ctx,
        QueuePolicy::Shared,
        &cr,
        &cs,
        &order,
        cfg,
        kind,
        bits,
        domain,
    );
    let join_wall = start.elapsed();
    result.set_checksum(checksum);

    let r_sizes: Vec<usize> = (0..parts).map(|p| cr.part_len(p)).collect();
    let s_sizes: Vec<usize> = (0..parts).map(|p| cs.part_len(p)).collect();
    let (r_sizes, s_sizes, order) = if cfg.skew_handling {
        spec::split_skewed_sizes(&r_sizes, &s_sizes, &order, cfg.sim_threads())
    } else {
        (r_sizes, s_sizes, order)
    };
    let (cpu_build, cpu_probe) = table_cpu(kind);
    let tasks = spec::join_task_specs(
        cfg,
        &r_sizes,
        &s_sizes,
        PartitionLayout::Spread,
        cpu_build,
        cpu_probe,
        table_bytes_per_tuple(kind, domain, bits, r.len()),
    );
    let (join_sim, sim) = spec::run_phase(cfg, &tasks, &order);
    result.push_phase_pool("join", join_wall, join_sim, &pool);
    if cfg.keep_timelines {
        result.timelines.push(("join", sim));
    }
    ctx.checkpoint(&result)?;
    Ok(result)
}

#[allow(clippy::too_many_arguments)]
fn run_chunked_join_phase(
    pool: &Executor,
    ctx: &FaultCtx,
    policy: QueuePolicy,
    cr: &ChunkedPartitions,
    cs: &ChunkedPartitions,
    order: &[usize],
    cfg: &JoinConfig,
    kind: TableKind,
    bits: u32,
    domain: usize,
) -> JoinChecksum {
    let (queue_order, skewed) = if cfg.skew_handling {
        let s_sizes: Vec<usize> = (0..cs.parts()).map(|p| cs.part_len(p)).collect();
        let (_, skewed) = crate::skew::classify_partitions(&s_sizes, cfg.threads);
        let filtered: Vec<usize> = order
            .iter()
            .copied()
            .filter(|p| !skewed.contains(p))
            .collect();
        (filtered, skewed)
    } else {
        (order.to_vec(), Vec::new())
    };
    let mut total = join_morsels(pool, &queue_order, cr.parts(), policy, |p| {
        let mut c = JoinChecksum::new();
        if ctx.tick() {
            return c;
        }
        let spec = spec_for(kind, bits, domain, cr.part_len(p));
        let _table_charge = match ctx.try_charge(spec.table_bytes()) {
            Some(charge) => charge,
            None => return c,
        };
        let mut r_iter = cr.chunks().iter().map(|ch| ch.partition(p));
        let mut s_iter = cs.chunks().iter().map(|ch| ch.partition(p));
        join_co_partition(
            kind,
            &spec,
            cfg.unique_build_keys,
            &mut r_iter,
            &mut s_iter,
            &mut c,
        );
        c
    });
    for p in skewed {
        if ctx.should_stop() {
            break;
        }
        let spec = spec_for(kind, bits, domain, cr.part_len(p));
        let _table_charge = match ctx.try_charge(spec.table_bytes()) {
            Some(charge) => charge,
            None => break,
        };
        let r_slices: Vec<&[mmjoin_util::Tuple]> =
            cr.chunks().iter().map(|ch| ch.partition(p)).collect();
        let s_slices: Vec<&[mmjoin_util::Tuple]> =
            cs.chunks().iter().map(|ch| ch.partition(p)).collect();
        total.merge(crate::skew::join_skewed_partition(
            cfg, kind, &spec, &r_slices, &s_slices,
        ));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk, gen_probe_zipf};
    use mmjoin_util::Placement;

    fn workload(n: usize) -> (Relation, Relation) {
        let r = gen_build_dense(n, 5, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(n * 3, n, 6, Placement::Chunked { parts: 4 });
        (r, s)
    }

    fn cfg_with(threads: usize, bits: Option<u32>) -> JoinConfig {
        let mut cfg = JoinConfig::new(threads);
        cfg.simulate = false;
        cfg.radix_bits = bits;
        cfg
    }

    #[test]
    fn pro_family_matches_reference() {
        let (r, s) = workload(4_000);
        let expect = reference_join(&r, &s);
        for kind in [TableKind::Chained, TableKind::Linear, TableKind::Array] {
            for improved in [false, true] {
                let res = join_pro(&r, &s, &cfg_with(4, Some(5)), kind, improved).unwrap();
                assert_eq!(res.matches, expect.count, "{kind:?} improved={improved}");
                assert_eq!(res.checksum, expect.digest, "{kind:?}");
            }
        }
    }

    #[test]
    fn cpr_family_matches_reference() {
        let (r, s) = workload(4_000);
        let expect = reference_join(&r, &s);
        for kind in [TableKind::Linear, TableKind::Array] {
            for threads in [1, 3, 8] {
                let res = join_cpr(&r, &s, &cfg_with(threads, Some(6)), kind).unwrap();
                assert_eq!(res.matches, expect.count, "{kind:?} threads={threads}");
                assert_eq!(res.checksum, expect.digest);
            }
        }
    }

    #[test]
    fn two_pass_pro_matches_reference() {
        let (r, s) = workload(4_000);
        let expect = reference_join(&r, &s);
        for kind in [TableKind::Chained, TableKind::Linear, TableKind::Array] {
            let res = join_pro_two_pass(&r, &s, &cfg_with(4, Some(6)), kind).unwrap();
            assert_eq!(res.matches, expect.count, "{kind:?}");
            assert_eq!(res.checksum, expect.digest, "{kind:?}");
        }
    }

    #[test]
    fn skewed_probe_is_correct() {
        let n = 2_000;
        let r = gen_build_dense(n, 7, Placement::Chunked { parts: 4 });
        let s = gen_probe_zipf(10_000, n, 0.99, 8, Placement::Chunked { parts: 4 });
        let expect = reference_join(&r, &s);
        let res = join_pro(&r, &s, &cfg_with(4, Some(4)), TableKind::Linear, true).unwrap();
        assert_eq!(res.matches, expect.count);
        assert_eq!(res.checksum, expect.digest);
        let res = join_cpr(&r, &s, &cfg_with(4, Some(4)), TableKind::Linear).unwrap();
        assert_eq!(res.matches, expect.count);
        assert_eq!(res.checksum, expect.digest);
    }

    #[test]
    fn skew_handling_preserves_results() {
        let n = 2_000;
        let r = gen_build_dense(n, 41, Placement::Chunked { parts: 4 });
        let s = gen_probe_zipf(30_000, n, 0.99, 42, Placement::Chunked { parts: 4 });
        let expect = reference_join(&r, &s);
        for kind in [TableKind::Linear, TableKind::Array] {
            let mut cfg = cfg_with(4, Some(5));
            cfg.skew_handling = true;
            let a = join_pro(&r, &s, &cfg, kind, true).unwrap();
            let b = join_cpr(&r, &s, &cfg, kind).unwrap();
            for res in [&a, &b] {
                assert_eq!(res.matches, expect.count, "{kind:?}");
                assert_eq!(res.checksum, expect.digest, "{kind:?}");
            }
        }
    }

    #[test]
    fn equation_one_bits_applied_when_unset() {
        let (r, s) = workload(2_000);
        let mut cfg = JoinConfig::new(2);
        cfg.simulate = false;
        let res = join_pro(&r, &s, &cfg, TableKind::Linear, false).unwrap();
        assert!(res.radix_bits.is_some());
        assert!(res.radix_bits.unwrap() >= 1);
    }

    #[test]
    fn empty_relations() {
        let empty = Relation::from_tuples(&[], Placement::Interleaved);
        let (r, _) = workload(100);
        let cfg = cfg_with(2, Some(3));
        assert_eq!(
            join_pro(&empty, &r, &cfg, TableKind::Linear, false)
                .unwrap()
                .matches,
            0
        );
        assert_eq!(
            join_pro(&r, &empty, &cfg, TableKind::Chained, false)
                .unwrap()
                .matches,
            0
        );
        assert_eq!(
            join_cpr(&empty, &empty, &cfg, TableKind::Linear)
                .unwrap()
                .matches,
            0
        );
    }

    #[test]
    fn simulated_time_present_when_enabled() {
        let (r, s) = workload(2_000);
        let mut cfg = JoinConfig::new(4);
        cfg.radix_bits = Some(4);
        let res = join_pro(&r, &s, &cfg, TableKind::Linear, false).unwrap();
        assert!(res.total_sim() > 0.0);
        assert!(res.sim_of("partition") > 0.0);
        assert!(res.sim_of("join") > 0.0);
    }
}
