//! Fault containment for join execution: cancellation, deadlines,
//! memory budgeting, and deterministic failpoints.
//!
//! The persistent executor ([`crate::executor`]) made worker threads a
//! process-lifetime resource shared by every join — so a join can no
//! longer be allowed to take the pool down with it. This module holds
//! the per-join fault state the thirteen drivers thread through their
//! phases:
//!
//! * [`CancelToken`] — cooperative cancellation, checked at morsel
//!   granularity inside the join/build/probe loops and at every phase
//!   boundary. Cancelling mid-join yields
//!   [`JoinError::Cancelled`] with the `PhaseStat`s of the phases that
//!   completed.
//! * Deadlines — `JoinConfig::deadline` bounds a join's wall time; an
//!   expired deadline surfaces as [`JoinError::Timedout`], again with
//!   partial phase stats.
//! * [`MemBudget`] — a `try_reserve`-style byte budget
//!   (`JoinConfig::mem_limit`). The drivers charge their large
//!   allocations (partition buffers, hash tables, SWWCB pools,
//!   materialization vectors) against it *before* allocating; exceeding
//!   the limit yields [`JoinError::MemoryBudgetExceeded`] instead of an
//!   abort.
//! * Failpoints (`--features failpoints`) — deterministic fault
//!   injection into every phase of every algorithm, armed per test
//!   thread ([`failpoints::arm_local`]) or process-wide via the
//!   `MMJOIN_FAILPOINTS` environment variable
//!   (`"NOP.build=panic,PRO.join=sleep:25"`).
//!
//! A [`FaultCtx`] is created once per join by each driver
//! ([`FaultCtx::begin`]); workers reach it through the closures they
//! run, so no global state is involved in the hot path. With none of
//! the knobs set, every check is one or two relaxed atomic loads.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mmjoin_util::pool::{lock_recover, WorkerPool};

use crate::config::JoinConfig;
use crate::plan::JoinError;
use crate::stats::JoinResult;
use crate::Algorithm;

#[cfg(feature = "failpoints")]
use std::sync::atomic::{AtomicU64, AtomicU8};
#[cfg(feature = "failpoints")]
use std::time::Duration;

thread_local! {
    /// The phase the join submitted from this thread is currently in —
    /// read by `plan::dispatch` to label `WorkerPanicked` errors.
    static CURRENT_PHASE: Cell<&'static str> = const { Cell::new("plan") };
}

/// The phase label of the join currently executing on this thread.
pub(crate) fn current_phase() -> &'static str {
    CURRENT_PHASE.with(|c| c.get())
}

/// Carrier for worker panic messages re-raised by the executor on the
/// submitting thread; `panic_message` unwraps it into the payload shown
/// in [`JoinError::WorkerPanicked`].
pub struct WorkerPanic(pub Vec<String>);

/// Best-effort string form of a panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(wp) = payload.downcast_ref::<WorkerPanic>() {
        wp.0.join("; ")
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cooperative cancellation handle for a running join.
///
/// Clone the token, hand one clone to `JoinConfig::cancel` (or
/// `Join::cancel_token`), keep the other; calling [`CancelToken::cancel`]
/// from any thread makes the join return [`JoinError::Cancelled`] at the
/// next morsel or phase boundary.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a [`MemBudget`] reservation was refused: the configured limit
/// and how many bytes were still unreserved at the time. Carried into
/// [`JoinError::MemoryBudgetExceeded`] so abort messages (and the
/// spilling join's eviction trigger) are diagnosable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    pub limit: usize,
    pub available: usize,
}

/// A byte budget for a join's large allocations.
///
/// `try_reserve` either admits the request or reports the limit and the
/// bytes still available — exceeding the budget is a *policy* decision
/// surfaced before the allocation happens, not an allocator failure
/// after.
#[derive(Debug)]
pub struct MemBudget {
    /// `usize::MAX` means unlimited (the fast path: one branch).
    limit: usize,
    used: AtomicUsize,
}

impl MemBudget {
    pub fn unlimited() -> Self {
        MemBudget {
            limit: usize::MAX,
            used: AtomicUsize::new(0),
        }
    }

    pub fn limited(bytes: usize) -> Self {
        MemBudget {
            limit: bytes,
            used: AtomicUsize::new(0),
        }
    }

    /// Reserve `bytes` against the budget, or report the limit and the
    /// bytes that were still free.
    pub fn try_reserve(&self, bytes: usize) -> Result<(), BudgetExceeded> {
        if self.limit == usize::MAX {
            return Ok(());
        }
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.limit {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            Err(BudgetExceeded {
                limit: self.limit,
                available: self.limit.saturating_sub(prev),
            })
        } else {
            Ok(())
        }
    }

    /// Return a reservation to the budget.
    pub fn release(&self, bytes: usize) {
        if self.limit != usize::MAX {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// The configured ceiling; `usize::MAX` means unlimited. Planners
    /// (the spilling join's fanout choice) size buffers against this.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

/// A scoped reservation against a [`MemBudget`]; released on drop, so
/// phase-scoped allocations (per-partition tables) give their bytes back
/// when the morsel completes.
pub struct MemCharge<'a> {
    budget: &'a MemBudget,
    bytes: usize,
}

impl Drop for MemCharge<'_> {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// Per-join fault state threaded through every phase of a driver.
pub struct FaultCtx {
    alg: Algorithm,
    cancel: CancelToken,
    deadline_at: Option<Instant>,
    started: Instant,
    budget: MemBudget,
    /// Current phase label (written at phase boundaries, read on error
    /// paths only).
    phase: Mutex<&'static str>,
    /// First worker-side failure (budget trip), surfaced at the next
    /// phase boundary.
    tripped: Mutex<Option<JoinError>>,
    /// Sticky fast flag: some stop condition has been observed.
    stopped: AtomicBool,
    /// Active failpoint for the current phase: 0 none, 1 panic, 2 sleep.
    #[cfg(feature = "failpoints")]
    fp_mode: AtomicU8,
    #[cfg(feature = "failpoints")]
    fp_sleep_ms: AtomicU64,
}

impl FaultCtx {
    /// Start fault tracking for one join under `cfg`'s knobs. Must be
    /// called on the submitting thread (failpoints armed with
    /// [`failpoints::arm_local`] are resolved against it).
    pub fn begin(alg: Algorithm, cfg: &JoinConfig) -> FaultCtx {
        CURRENT_PHASE.with(|c| c.set("plan"));
        if let Some(mode) = cfg.kernel_mode {
            mmjoin_util::kernels::set_mode(mode);
        }
        if let Some(policy) = cfg.alloc_policy {
            mmjoin_util::mem::set_policy(policy);
        }
        FaultCtx {
            alg,
            cancel: cfg.cancel.clone(),
            deadline_at: cfg.deadline.map(|d| Instant::now() + d),
            started: Instant::now(),
            budget: match cfg.mem_limit {
                Some(bytes) => MemBudget::limited(bytes),
                None => MemBudget::unlimited(),
            },
            phase: Mutex::new("plan"),
            tripped: Mutex::new(None),
            stopped: AtomicBool::new(false),
            #[cfg(feature = "failpoints")]
            fp_mode: AtomicU8::new(0),
            #[cfg(feature = "failpoints")]
            fp_sleep_ms: AtomicU64::new(0),
        }
    }

    pub fn algorithm(&self) -> Algorithm {
        self.alg
    }

    /// The phase the join is currently in.
    pub fn phase(&self) -> &'static str {
        *lock_recover(&self.phase)
    }

    /// Enter a named phase: updates the error label and arms the phase's
    /// failpoint (`"<ALG>.<phase>"`), if any.
    pub fn enter_phase(&self, name: &'static str) {
        *lock_recover(&self.phase) = name;
        CURRENT_PHASE.with(|c| c.set(name));
        #[cfg(feature = "failpoints")]
        {
            let key = format!("{}.{name}", self.alg.name());
            let (mode, ms) = match failpoints::active(&key) {
                Some(failpoints::FailAction::Panic) => (1, 0),
                Some(failpoints::FailAction::Sleep(ms)) => (2, ms),
                None => (0, 0),
            };
            self.fp_sleep_ms.store(ms, Ordering::Relaxed);
            self.fp_mode.store(mode, Ordering::Relaxed);
        }
    }

    /// Should in-flight work bail out? Checked at morsel granularity;
    /// sticky once true. With no cancel token fired and no deadline this
    /// is one relaxed load (+ one for the token).
    pub fn should_stop(&self) -> bool {
        if self.stopped.load(Ordering::Relaxed) {
            return true;
        }
        if self.cancel.is_cancelled() || self.deadline_at.is_some_and(|d| Instant::now() >= d) {
            self.stopped.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Worker-side per-morsel hook: fires the phase's failpoint (if the
    /// `failpoints` feature armed one) and reports whether the task
    /// should bail out.
    pub fn tick(&self) -> bool {
        self.on_worker();
        self.should_stop()
    }

    /// Failpoint evaluation only (used by [`CtxPool`] for phases whose
    /// inner loops live in other crates).
    #[inline]
    pub(crate) fn on_worker(&self) {
        #[cfg(feature = "failpoints")]
        self.fire();
    }

    #[cfg(feature = "failpoints")]
    fn fire(&self) {
        match self.fp_mode.load(Ordering::Relaxed) {
            1 => panic!("failpoint {}.{} fired", self.alg.name(), self.phase()),
            2 => std::thread::sleep(Duration::from_millis(
                self.fp_sleep_ms.load(Ordering::Relaxed),
            )),
            _ => {}
        }
    }

    /// The join's byte budget, for drivers (the spilling join's
    /// eviction planner) that need raw reserve/release control.
    pub(crate) fn budget(&self) -> &MemBudget {
        &self.budget
    }

    /// Build the typed budget error for a refused reservation in the
    /// current phase.
    pub(crate) fn budget_error(&self, bytes: usize, be: BudgetExceeded) -> JoinError {
        JoinError::MemoryBudgetExceeded {
            phase: self.phase(),
            requested: bytes,
            limit: be.limit,
            available: be.available,
        }
    }

    /// Reserve `bytes` for a driver-side allocation, or fail the join.
    pub fn charge(&self, bytes: usize) -> Result<MemCharge<'_>, JoinError> {
        match self.budget.try_reserve(bytes) {
            Ok(()) => Ok(MemCharge {
                budget: &self.budget,
                bytes,
            }),
            Err(be) => Err(self.budget_error(bytes, be)),
        }
    }

    /// Worker-side reservation: on failure the error is recorded (to be
    /// surfaced at the next [`FaultCtx::checkpoint`]) and `None` is
    /// returned so the morsel can bail out.
    pub fn try_charge(&self, bytes: usize) -> Option<MemCharge<'_>> {
        match self.budget.try_reserve(bytes) {
            Ok(()) => Some(MemCharge {
                budget: &self.budget,
                bytes,
            }),
            Err(be) => {
                self.trip(self.budget_error(bytes, be));
                None
            }
        }
    }

    /// Record a worker-side failure; first one wins. `pub(crate)` so
    /// drivers with worker-side I/O (the spilling join) can surface a
    /// typed error at the next checkpoint.
    pub(crate) fn trip(&self, e: JoinError) {
        let mut t = lock_recover(&self.tripped);
        if t.is_none() {
            *t = Some(e);
        }
        self.stopped.store(true, Ordering::Relaxed);
    }

    /// Phase-boundary check: surfaces a worker-side trip, cancellation,
    /// or an expired deadline as the matching [`JoinError`], carrying
    /// the `PhaseStat`s completed so far.
    pub fn checkpoint(&self, result: &JoinResult) -> Result<(), JoinError> {
        if let Some(e) = lock_recover(&self.tripped).take() {
            return Err(e);
        }
        if self.cancel.is_cancelled() {
            return Err(JoinError::Cancelled {
                phase: self.phase(),
                partial: result.phases.clone(),
            });
        }
        if let Some(d) = self.deadline_at {
            if Instant::now() >= d {
                return Err(JoinError::Timedout {
                    phase: self.phase(),
                    elapsed: self.started.elapsed(),
                    partial: result.phases.clone(),
                });
            }
        }
        Ok(())
    }
}

/// [`WorkerPool`] adapter that evaluates the join's failpoint on every
/// worker before running the phase closure — the injection path for
/// phases whose parallel loops live below `mmjoin-core` (partitioning,
/// CHT bulkload). It never skips the closure: the pool contract (every
/// index invoked once) is what the result-slot helpers rely on.
pub struct CtxPool<'a> {
    inner: &'a dyn WorkerPool,
    ctx: &'a FaultCtx,
}

impl<'a> CtxPool<'a> {
    pub fn new(inner: &'a dyn WorkerPool, ctx: &'a FaultCtx) -> Self {
        CtxPool { inner, ctx }
    }
}

impl WorkerPool for CtxPool<'_> {
    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        let ctx = self.ctx;
        self.inner.broadcast(&|w| {
            ctx.on_worker();
            f(w);
        });
    }
}

/// Deterministic fault injection, compiled in only with the
/// `failpoints` feature.
///
/// A failpoint is named `"<ALG>.<phase>"` (e.g. `"PRO.partition"`,
/// `"NOP.build"`, `"MWAY.sort"`) and carries a [`FailAction`]:
/// `Panic` makes every worker of that phase panic, `Sleep(ms)` delays
/// each morsel (for exercising deadlines deterministically).
///
/// Arming is either *process-wide* ([`arm`]/[`disarm`], seeded from the
/// `MMJOIN_FAILPOINTS` environment variable on first use) or *local to
/// the submitting thread* ([`arm_local`]) — the latter is what tests
/// use, so concurrently running tests sharing the process-global
/// executor pools cannot see each other's faults.
#[cfg(feature = "failpoints")]
pub mod failpoints {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    use mmjoin_util::pool::lock_recover;

    /// What an armed failpoint does when a worker reaches it.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum FailAction {
        /// Panic on every worker of the phase.
        Panic,
        /// Sleep this many milliseconds per morsel/worker.
        Sleep(u64),
    }

    static GLOBAL: OnceLock<Mutex<HashMap<String, FailAction>>> = OnceLock::new();

    thread_local! {
        static LOCAL: RefCell<HashMap<String, FailAction>> =
            RefCell::new(HashMap::new());
    }

    fn global() -> &'static Mutex<HashMap<String, FailAction>> {
        GLOBAL.get_or_init(|| {
            Mutex::new(parse(
                std::env::var("MMJOIN_FAILPOINTS")
                    .ok()
                    .as_deref()
                    .unwrap_or(""),
            ))
        })
    }

    /// Parse `"name=panic,name=sleep:25"`; unknown actions are ignored.
    pub(crate) fn parse(spec: &str) -> HashMap<String, FailAction> {
        let mut map = HashMap::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((name, action)) = entry.split_once('=') else {
                continue;
            };
            let action = if action.eq_ignore_ascii_case("panic") {
                Some(FailAction::Panic)
            } else if let Some(ms) = action.strip_prefix("sleep:") {
                ms.parse().ok().map(FailAction::Sleep)
            } else {
                None
            };
            if let Some(a) = action {
                map.insert(name.trim().to_string(), a);
            }
        }
        map
    }

    /// Arm a failpoint process-wide.
    pub fn arm(name: &str, action: FailAction) {
        lock_recover(global()).insert(name.to_string(), action);
    }

    /// Disarm a process-wide failpoint.
    pub fn disarm(name: &str) {
        lock_recover(global()).remove(name);
    }

    /// Arm a failpoint for joins submitted from *this thread* only;
    /// disarmed when the returned guard drops.
    #[must_use = "the failpoint disarms when the guard drops"]
    pub fn arm_local(name: &str, action: FailAction) -> LocalGuard {
        LOCAL.with(|l| l.borrow_mut().insert(name.to_string(), action));
        LocalGuard {
            name: name.to_string(),
        }
    }

    /// Disarms its thread-local failpoint on drop.
    pub struct LocalGuard {
        name: String,
    }

    impl Drop for LocalGuard {
        fn drop(&mut self) {
            LOCAL.with(|l| l.borrow_mut().remove(&self.name));
        }
    }

    /// The action armed for `name`, thread-local arming first.
    pub(crate) fn active(name: &str) -> Option<FailAction> {
        if let Some(a) = LOCAL.with(|l| l.borrow().get(name).copied()) {
            return Some(a);
        }
        lock_recover(global()).get(name).copied()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn spec_parsing() {
            let m = parse("NOP.build=panic, PRO.join=sleep:25,bad,x=frob");
            assert_eq!(m.get("NOP.build"), Some(&FailAction::Panic));
            assert_eq!(m.get("PRO.join"), Some(&FailAction::Sleep(25)));
            assert_eq!(m.len(), 2);
        }

        #[test]
        fn local_arming_is_scoped() {
            {
                let _g = arm_local("T.phase", FailAction::Panic);
                assert_eq!(active("T.phase"), Some(FailAction::Panic));
            }
            assert_eq!(active("T.phase"), None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn cancel_token_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn budget_admits_and_rejects() {
        let b = MemBudget::limited(100);
        assert!(b.try_reserve(60).is_ok());
        assert_eq!(
            b.try_reserve(60),
            Err(BudgetExceeded {
                limit: 100,
                available: 40,
            })
        );
        assert_eq!(b.used(), 60);
        b.release(60);
        assert!(b.try_reserve(100).is_ok());
    }

    #[test]
    fn unlimited_budget_never_rejects() {
        let b = MemBudget::unlimited();
        assert!(b.try_reserve(usize::MAX / 2).is_ok());
        assert!(b.try_reserve(usize::MAX / 2).is_ok());
        assert_eq!(b.used(), 0, "unlimited budget does no accounting");
    }

    #[test]
    fn charge_guard_releases_on_drop() {
        let mut cfg = JoinConfig::new(1);
        cfg.mem_limit = Some(64);
        let ctx = FaultCtx::begin(Algorithm::Nop, &cfg);
        {
            let _c = ctx.charge(64).expect("fits");
            assert!(ctx.charge(1).is_err());
        }
        assert!(ctx.charge(64).is_ok(), "guard drop released the bytes");
    }

    #[test]
    fn worker_trip_surfaces_at_checkpoint() {
        let mut cfg = JoinConfig::new(1);
        cfg.mem_limit = Some(10);
        let ctx = FaultCtx::begin(Algorithm::Cprl, &cfg);
        ctx.enter_phase("join");
        assert!(ctx.try_charge(100).is_none());
        assert!(ctx.should_stop());
        let result = JoinResult::new(Algorithm::Cprl);
        match ctx.checkpoint(&result) {
            Err(JoinError::MemoryBudgetExceeded {
                phase,
                requested,
                limit,
                available,
            }) => {
                assert_eq!(phase, "join");
                assert_eq!(requested, 100);
                assert_eq!(limit, 10);
                assert_eq!(available, 10, "nothing was reserved yet");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadline_zero_stops_immediately() {
        let mut cfg = JoinConfig::new(1);
        cfg.deadline = Some(Duration::ZERO);
        let ctx = FaultCtx::begin(Algorithm::Pro, &cfg);
        ctx.enter_phase("partition");
        assert!(ctx.should_stop());
        let result = JoinResult::new(Algorithm::Pro);
        assert!(matches!(
            ctx.checkpoint(&result),
            Err(JoinError::Timedout {
                phase: "partition",
                ..
            })
        ));
    }

    #[test]
    fn cancellation_reports_partial_phases() {
        let mut cfg = JoinConfig::new(1);
        let token = CancelToken::new();
        cfg.cancel = token.clone();
        let ctx = FaultCtx::begin(Algorithm::Mway, &cfg);
        ctx.enter_phase("sort");
        let mut result = JoinResult::new(Algorithm::Mway);
        result.push_phase("partition", Duration::from_millis(1), 0.0);
        assert!(ctx.checkpoint(&result).is_ok());
        token.cancel();
        match ctx.checkpoint(&result) {
            Err(JoinError::Cancelled { phase, partial }) => {
                assert_eq!(phase, "sort");
                assert_eq!(partial.len(), 1);
                assert_eq!(partial[0].name, "partition");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn panic_message_forms() {
        let boxed: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(boxed.as_ref()), "boom");
        let boxed: Box<dyn Any + Send> = Box::new(String::from("heap boom"));
        assert_eq!(panic_message(boxed.as_ref()), "heap boom");
        let boxed: Box<dyn Any + Send> = Box::new(WorkerPanic(vec!["a".into(), "b".into()]));
        assert_eq!(panic_message(boxed.as_ref()), "a; b");
        let boxed: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
    }
}
