//! The typed join-plan API: algorithm descriptors, validated
//! configuration building, and the fluent [`Join`] entry point.
//!
//! ```
//! use mmjoin_core::{Algorithm, Join};
//! use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
//! use mmjoin_util::Placement;
//!
//! let r = gen_build_dense(10_000, 42, Placement::Chunked { parts: 4 });
//! let s = gen_probe_fk(100_000, 10_000, 43, Placement::Chunked { parts: 4 });
//! let result = Join::new(Algorithm::Cprl)
//!     .with_threads(4)
//!     .run(&r, &s)
//!     .unwrap();
//! assert_eq!(result.matches, 100_000);
//! ```
//!
//! Misconfigurations that previously panicked deep inside a join phase
//! (a sparse build key fed to an array join, a zero thread count, an
//! absurd radix fanout) surface here as [`JoinError`] values before any
//! partitioning work starts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use mmjoin_util::kernels::KernelMode;
use mmjoin_util::mem::AllocPolicy;
use mmjoin_util::Relation;

use crate::config::{JoinConfig, ProfileConfig, TableKind};
use crate::fault::CancelToken;
use crate::stats::{JoinResult, PhaseStat};
use crate::Algorithm;

/// Largest accepted radix-bits override: 2^24 partitions is already far
/// beyond any cache-resident co-partition size the study explores.
pub const MAX_RADIX_BITS: u32 = 24;

/// Largest accepted host thread count: past this the "workers" are pure
/// oversubscription noise on any machine the study models.
pub const MAX_THREADS: usize = 1024;

/// A failure raised while building a [`JoinConfig`], launching a
/// [`Join`], or — for the runtime variants (`WorkerPanicked`,
/// `Timedout`, `Cancelled`, `MemoryBudgetExceeded`) — during execution.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum JoinError {
    /// A configuration field failed builder-time validation — a zero
    /// thread count, an out-of-range radix fanout, an oversubscribed
    /// host. Surfaces at [`JoinConfigBuilder::build`], before any
    /// partitioning work starts.
    InvalidConfig {
        field: &'static str,
        value: usize,
        reason: &'static str,
    },
    /// The algorithm has no operator-pipeline port yet (see
    /// [`crate::pipeline::PORTED`]); run it through its monolithic
    /// driver instead.
    PipelineUnsupported { algorithm: Algorithm },
    /// A dense-domain algorithm (NOPA/PRA/CPRA/PRAiS) was given build
    /// keys beyond the configured key domain; the payload array cannot
    /// be sized. Raise `key_domain` or pick a hash-table variant.
    DomainExceeded {
        algorithm: Algorithm,
        max_key: u32,
        domain: usize,
    },
    /// An algorithm name that is not one of the thirteen.
    UnknownAlgorithm(String),
    /// A morsel task panicked. The phase barrier completed, the pool
    /// healed (any dead worker respawned), and later joins on the same
    /// persistent pool are unaffected; `payload` carries the panic
    /// message(s), `phase` the phase that was running.
    WorkerPanicked {
        phase: &'static str,
        payload: String,
    },
    /// `JoinConfig::deadline` expired. `partial` holds the `PhaseStat`s
    /// of the phases that completed before the deadline hit.
    Timedout {
        phase: &'static str,
        elapsed: Duration,
        partial: Vec<PhaseStat>,
    },
    /// The join's [`CancelToken`] was cancelled. `partial` holds the
    /// `PhaseStat`s of the phases that completed before cancellation.
    Cancelled {
        phase: &'static str,
        partial: Vec<PhaseStat>,
    },
    /// A large allocation would have pushed the join past
    /// `JoinConfig::mem_limit`; the allocation was never made.
    /// `available` is how many bytes were still unreserved when the
    /// request was refused.
    MemoryBudgetExceeded {
        phase: &'static str,
        requested: usize,
        limit: usize,
        available: usize,
    },
    /// A spill or ledger file operation failed. `source` is the
    /// rendered `std::io::Error` (this enum is `Clone + PartialEq`, the
    /// raw error is neither).
    Io { phase: &'static str, source: String },
    /// A spilled partition could not be shrunk below the memory budget
    /// within the bounded recursion depth — extreme skew (e.g. one key
    /// larger than the whole budget). Raise `mem_limit` or treat the
    /// partition as unjoinable in memory.
    SpillRecursionLimit {
        partition: usize,
        depth: u32,
        limit: u32,
    },
}

impl JoinError {
    /// Stable machine-readable error code.
    ///
    /// These strings are a **compatibility contract** (DESIGN.md §15):
    /// they are what `mmjoin-serve` puts on the wire in error frames and
    /// what `observe::error_json` serializes, so clients match on them.
    /// Codes are only ever *added* (the enum is `#[non_exhaustive]`);
    /// renaming or removing one is a breaking protocol change.
    pub fn code(&self) -> &'static str {
        match self {
            JoinError::InvalidConfig { .. } => "invalid_config",
            JoinError::PipelineUnsupported { .. } => "pipeline_unsupported",
            JoinError::DomainExceeded { .. } => "domain_exceeded",
            JoinError::UnknownAlgorithm(_) => "unknown_algorithm",
            JoinError::WorkerPanicked { .. } => "worker_panicked",
            JoinError::Timedout { .. } => "timedout",
            JoinError::Cancelled { .. } => "cancelled",
            JoinError::MemoryBudgetExceeded { .. } => "memory_budget_exceeded",
            JoinError::Io { .. } => "io",
            JoinError::SpillRecursionLimit { .. } => "spill_recursion_limit",
        }
    }

    /// The phase a runtime failure hit, when the variant carries one
    /// (`None` for plan-time errors like `InvalidConfig`).
    pub fn phase(&self) -> Option<&'static str> {
        match self {
            JoinError::WorkerPanicked { phase, .. }
            | JoinError::Timedout { phase, .. }
            | JoinError::Cancelled { phase, .. }
            | JoinError::MemoryBudgetExceeded { phase, .. }
            | JoinError::Io { phase, .. } => Some(phase),
            _ => None,
        }
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::InvalidConfig {
                field,
                value,
                reason,
            } => write!(f, "invalid {field} = {value}: {reason}"),
            JoinError::PipelineUnsupported { algorithm } => {
                write!(f, "{algorithm} has no operator-pipeline port (ported: ")?;
                for (i, a) in crate::pipeline::PORTED.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            JoinError::DomainExceeded {
                algorithm,
                max_key,
                domain,
            } => write!(
                f,
                "{algorithm} needs a dense key domain: build key {max_key} exceeds \
                 key_domain {domain}"
            ),
            JoinError::UnknownAlgorithm(name) => {
                write!(f, "unknown algorithm {name:?} (expected one of ")?;
                for (i, a) in Algorithm::WITH_EXTENSIONS.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            JoinError::WorkerPanicked { phase, payload } => {
                write!(f, "worker panicked during {phase} phase: {payload}")
            }
            JoinError::Timedout {
                phase,
                elapsed,
                partial,
            } => write!(
                f,
                "join deadline exceeded after {:.1} ms in {phase} phase \
                 ({} phase(s) completed)",
                elapsed.as_secs_f64() * 1e3,
                partial.len()
            ),
            JoinError::Cancelled { phase, partial } => write!(
                f,
                "join cancelled in {phase} phase ({} phase(s) completed)",
                partial.len()
            ),
            JoinError::MemoryBudgetExceeded {
                phase,
                requested,
                limit,
                available,
            } => write!(
                f,
                "memory budget exceeded in {phase} phase: \
                 {requested} bytes requested against a {limit}-byte limit \
                 ({available} bytes available)"
            ),
            JoinError::Io { phase, source } => {
                write!(f, "I/O error in {phase} phase: {source}")
            }
            JoinError::SpillRecursionLimit {
                partition,
                depth,
                limit,
            } => write!(
                f,
                "spilled partition {partition} still exceeds the memory budget \
                 after {depth} recursive repartitioning passes (limit {limit}); \
                 the workload is too skewed for this mem_limit"
            ),
        }
    }
}

impl std::error::Error for JoinError {}

/// Join family — the paper's top-level classification (Section 3).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// No-partitioning hash joins: one shared table, chunk-parallel.
    NoPartitioning,
    /// Partition-based hash joins (PR*/CPR*).
    Partitioned,
    /// Sort-merge (MWAY).
    SortMerge,
}

/// Per-partition (or global) table each algorithm builds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TableFlavor {
    /// Shared lock-free linear-probing table (NOP).
    LockFreeLinear,
    /// Shared payload array over the dense key domain (NOPA).
    LockFreeArray,
    /// Concise hash table: bitmap + dense array (CHTJ).
    Concise,
    /// Per-partition bucket-chained table.
    Chained,
    /// Per-partition linear-probing table.
    Linear,
    /// Per-partition payload array.
    Array,
    /// No table: sorted runs are merge-joined (MWAY).
    SortedRuns,
}

/// How join tasks reach the workers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scheduling {
    /// Static chunking of the probe input (no task queue).
    ChunkParallel,
    /// Task queue filled in sequential partition order.
    Sequential,
    /// Task queue(s) filled NUMA round-robin — on the host executor this
    /// is the NUMA-local queue policy with work stealing.
    NumaRoundRobin,
}

/// Partitioning strategy of the materialization phase.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// No partitioning pass at all.
    None,
    /// Hash-prefix split of the build side only (CHTJ bulkload regions).
    BuildRegions,
    /// One global pass with software write-combine buffers.
    SinglePassSwwcb,
    /// Two global passes, direct scatter (PRB).
    TwoPassDirect,
    /// Chunk-local partitioning, no global histogram (CPR*).
    Chunked,
}

/// Structural description of an algorithm — the four dimensions of the
/// paper's Table 2, derivable from [`Algorithm`] without running it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct AlgorithmDescriptor {
    pub family: Family,
    pub table: TableFlavor,
    pub scheduling: Scheduling,
    pub partitioning: Partitioning,
}

impl Algorithm {
    /// The algorithm's structural descriptor (Table 2).
    pub fn descriptor(self) -> AlgorithmDescriptor {
        use Algorithm as A;
        let family = match self {
            A::Nop | A::Nopa | A::Chtj => Family::NoPartitioning,
            A::Mway => Family::SortMerge,
            _ => Family::Partitioned,
        };
        let table = match self {
            A::Nop => TableFlavor::LockFreeLinear,
            A::Nopa => TableFlavor::LockFreeArray,
            A::Chtj => TableFlavor::Concise,
            A::Mway => TableFlavor::SortedRuns,
            A::Prb | A::Pro | A::ProIs => TableFlavor::Chained,
            A::Prl | A::PrlIs | A::Cprl | A::Shhj => TableFlavor::Linear,
            A::Pra | A::PraIs | A::Cpra => TableFlavor::Array,
        };
        let scheduling = match self {
            A::Nop | A::Nopa | A::Chtj => Scheduling::ChunkParallel,
            A::ProIs | A::PrlIs | A::PraIs => Scheduling::NumaRoundRobin,
            _ => Scheduling::Sequential,
        };
        let partitioning = match self {
            A::Nop | A::Nopa => Partitioning::None,
            A::Chtj => Partitioning::BuildRegions,
            A::Prb => Partitioning::TwoPassDirect,
            A::Cprl | A::Cpra => Partitioning::Chunked,
            A::Mway | A::Pro | A::Prl | A::Pra | A::ProIs | A::PrlIs | A::PraIs | A::Shhj => {
                Partitioning::SinglePassSwwcb
            }
        };
        AlgorithmDescriptor {
            family,
            table,
            scheduling,
            partitioning,
        }
    }

    /// Parse a paper abbreviation, with a typed error for the CLI.
    pub fn parse(name: &str) -> Result<Algorithm, JoinError> {
        Algorithm::from_name(name).ok_or_else(|| JoinError::UnknownAlgorithm(name.to_string()))
    }
}

/// Validating builder for [`JoinConfig`] — the panic-free alternative to
/// mutating a `JoinConfig::new` value directly.
#[must_use = "a JoinConfigBuilder does nothing until built"]
#[derive(Clone, Debug, Default)]
pub struct JoinConfigBuilder {
    threads: Option<usize>,
    sim_threads: Option<usize>,
    radix_bits: Option<u32>,
    key_domain: Option<usize>,
    probe_theta: Option<f64>,
    skew_handling: Option<bool>,
    simulate: Option<bool>,
    unique_build_keys: Option<bool>,
    deadline: Option<Duration>,
    mem_limit: Option<usize>,
    kernel_mode: Option<KernelMode>,
    alloc_policy: Option<AllocPolicy>,
    cancel: Option<CancelToken>,
    profile: Option<ProfileConfig>,
    pipeline_batch: Option<usize>,
    spill_dir: Option<std::path::PathBuf>,
    spill: Option<bool>,
}

impl JoinConfigBuilder {
    /// Host worker threads (must be >= 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Thread count presented to the NUMA cost model (must be >= 1).
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = Some(sim_threads);
        self
    }

    /// Override Equation (1)'s radix bits (must be in `1..=24`).
    pub fn with_radix_bits(mut self, bits: u32) -> Self {
        self.radix_bits = Some(bits);
        self
    }

    /// Upper bound of the build key domain (0 = dense, derive from |R|).
    pub fn with_key_domain(mut self, domain: usize) -> Self {
        self.key_domain = Some(domain);
        self
    }

    /// Zipf skew of the probe keys fed to the cost model.
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.probe_theta = Some(theta);
        self
    }

    /// Cooperative processing of oversized co-partitions.
    pub fn with_skew_handling(mut self, on: bool) -> Self {
        self.skew_handling = Some(on);
        self
    }

    /// Compute simulated NUMA phase times alongside wall time.
    pub fn with_simulate(mut self, on: bool) -> Self {
        self.simulate = Some(on);
        self
    }

    /// Whether build keys are unique (the study's PK assumption).
    pub fn with_unique_build_keys(mut self, unique: bool) -> Self {
        self.unique_build_keys = Some(unique);
        self
    }

    /// Wall-clock bound on the whole join (`JoinError::Timedout`).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Byte budget for large allocations
    /// (`JoinError::MemoryBudgetExceeded`).
    pub fn with_mem_limit(mut self, bytes: usize) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Hardware-kernel selection: `KernelMode::Portable` forces the
    /// plain-copy/no-prefetch fallbacks, `KernelMode::Simd` the
    /// streaming-store + prefetch paths (where the CPU has them),
    /// `KernelMode::Auto` re-resolves from `MMJOIN_KERNELS` / CPU
    /// detection. The mode is installed process-wide when the join runs.
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = Some(mode);
        self
    }

    /// Memory-allocation policy for the join's large buffers:
    /// `AllocPolicy::Portable` is the plain aligned heap,
    /// `AllocPolicy::Mapped { .. }` routes them through mmap-backed
    /// arenas with huge pages and NUMA placement (see
    /// `mmjoin_util::mem`). Installed process-wide when the join runs;
    /// unavailable backends degrade silently to the portable path.
    pub fn with_alloc_policy(mut self, policy: AllocPolicy) -> Self {
        self.alloc_policy = Some(policy);
        self
    }

    /// Cancellation handle; keep a clone and call
    /// [`CancelToken::cancel`] to abort in-flight joins.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Per-worker span + native PMU counter recording
    /// (`ProfileConfig::on()` / `off()`; off by default).
    pub fn with_profile(mut self, profile: ProfileConfig) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Tuples per batch flowing between pipeline operators (must be
    /// >= 1; see `mmjoin_core::pipeline`).
    pub fn with_pipeline_batch(mut self, tuples: usize) -> Self {
        self.pipeline_batch = Some(tuples);
        self
    }

    /// Directory the spilling join ([`Algorithm::Shhj`]) creates its
    /// temp directory under; defaults to the system temp dir.
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Allow the spilling join to evict partitions to disk (default
    /// true). With `false`, SHHJ behaves like the classic drivers and
    /// fails with [`JoinError::MemoryBudgetExceeded`] under pressure.
    pub fn with_spill(mut self, on: bool) -> Self {
        self.spill = Some(on);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<JoinConfig, JoinError> {
        let threads = self.threads.unwrap_or(4);
        if threads == 0 {
            return Err(JoinError::InvalidConfig {
                field: "threads",
                value: 0,
                reason: "must be >= 1",
            });
        }
        if threads > MAX_THREADS {
            return Err(JoinError::InvalidConfig {
                field: "threads",
                value: threads,
                reason: "exceeds MAX_THREADS (1024): oversubscribed host",
            });
        }
        if self.sim_threads == Some(0) {
            return Err(JoinError::InvalidConfig {
                field: "sim_threads",
                value: 0,
                reason: "must be >= 1 when set",
            });
        }
        if let Some(bits) = self.radix_bits {
            if bits == 0 || bits > MAX_RADIX_BITS {
                return Err(JoinError::InvalidConfig {
                    field: "radix_bits",
                    value: bits as usize,
                    reason: "must be in 1..=MAX_RADIX_BITS (24)",
                });
            }
        }
        if self.pipeline_batch == Some(0) {
            return Err(JoinError::InvalidConfig {
                field: "pipeline_batch",
                value: 0,
                reason: "must be >= 1",
            });
        }
        let mut cfg = JoinConfig::new(threads);
        cfg.sim_threads = self.sim_threads;
        cfg.radix_bits = self.radix_bits;
        if let Some(domain) = self.key_domain {
            cfg.key_domain = domain;
        }
        if let Some(theta) = self.probe_theta {
            cfg.probe_theta = theta;
        }
        if let Some(on) = self.skew_handling {
            cfg.skew_handling = on;
        }
        if let Some(on) = self.simulate {
            cfg.simulate = on;
        }
        if let Some(unique) = self.unique_build_keys {
            cfg.unique_build_keys = unique;
        }
        cfg.deadline = self.deadline;
        cfg.mem_limit = self.mem_limit;
        cfg.kernel_mode = self.kernel_mode;
        cfg.alloc_policy = self.alloc_policy;
        if let Some(token) = self.cancel {
            cfg.cancel = token;
        }
        if let Some(profile) = self.profile {
            cfg.profile = profile;
        }
        if let Some(batch) = self.pipeline_batch {
            cfg.pipeline_batch = batch;
        }
        cfg.spill_dir = self.spill_dir;
        if let Some(on) = self.spill {
            cfg.spill = on;
        }
        Ok(cfg)
    }
}

impl JoinConfig {
    /// Start a validating configuration builder.
    pub fn builder() -> JoinConfigBuilder {
        JoinConfigBuilder::default()
    }
}

/// A fluent, validated join plan: pick an [`Algorithm`], set the
/// `with_*` knobs, and [`run`](Join::run) it. The sole entry point —
/// configuration mistakes come back as [`JoinError`] before any
/// partitioning work starts, instead of panicking mid-phase.
#[must_use = "a Join does nothing until run"]
#[derive(Clone, Debug)]
pub struct Join {
    algorithm: Algorithm,
    builder: JoinConfigBuilder,
    config: Option<JoinConfig>,
    pipeline: bool,
}

impl Join {
    /// Plan a join with `algorithm` and default configuration.
    pub fn new(algorithm: Algorithm) -> Self {
        Join {
            algorithm,
            builder: JoinConfigBuilder::default(),
            config: None,
            pipeline: false,
        }
    }

    /// The planned algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Its structural descriptor.
    pub fn descriptor(&self) -> AlgorithmDescriptor {
        self.algorithm.descriptor()
    }

    /// Host worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.builder = self.builder.with_threads(threads);
        self
    }

    /// Cost-model thread count.
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.builder = self.builder.with_sim_threads(sim_threads);
        self
    }

    /// Radix-bits override.
    pub fn with_radix_bits(mut self, bits: u32) -> Self {
        self.builder = self.builder.with_radix_bits(bits);
        self
    }

    /// Build key domain bound.
    pub fn with_key_domain(mut self, domain: usize) -> Self {
        self.builder = self.builder.with_key_domain(domain);
        self
    }

    /// Probe-side Zipf skew for the cost model.
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.builder = self.builder.with_zipf(theta);
        self
    }

    /// Cooperative skew handling.
    pub fn with_skew_handling(mut self, on: bool) -> Self {
        self.builder = self.builder.with_skew_handling(on);
        self
    }

    /// Simulated NUMA timing on/off.
    pub fn with_simulate(mut self, on: bool) -> Self {
        self.builder = self.builder.with_simulate(on);
        self
    }

    /// Unique-build-keys (PK) assumption.
    pub fn with_unique_build_keys(mut self, unique: bool) -> Self {
        self.builder = self.builder.with_unique_build_keys(unique);
        self
    }

    /// Wall-clock bound on the whole join.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.builder = self.builder.with_deadline(deadline);
        self
    }

    /// Byte budget for the join's large allocations.
    pub fn with_mem_limit(mut self, bytes: usize) -> Self {
        self.builder = self.builder.with_mem_limit(bytes);
        self
    }

    /// Hardware-kernel selection (see
    /// [`JoinConfigBuilder::with_kernel_mode`]).
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.builder = self.builder.with_kernel_mode(mode);
        self
    }

    /// Memory-allocation policy (see
    /// [`JoinConfigBuilder::with_alloc_policy`]).
    pub fn with_alloc_policy(mut self, policy: AllocPolicy) -> Self {
        self.builder = self.builder.with_alloc_policy(policy);
        self
    }

    /// Cancellation handle for this plan's runs.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.builder = self.builder.with_cancel_token(token);
        self
    }

    /// Per-worker span + native-counter recording (see
    /// [`JoinConfigBuilder::with_profile`] and `mmjoin_core::observe`).
    pub fn with_profile(mut self, profile: ProfileConfig) -> Self {
        self.builder = self.builder.with_profile(profile);
        self
    }

    /// Tuples per batch flowing between pipeline operators (see
    /// [`JoinConfigBuilder::with_pipeline_batch`]).
    pub fn with_pipeline_batch(mut self, tuples: usize) -> Self {
        self.builder = self.builder.with_pipeline_batch(tuples);
        self
    }

    /// Spill-file parent directory (see
    /// [`JoinConfigBuilder::with_spill_dir`]).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.builder = self.builder.with_spill_dir(dir);
        self
    }

    /// Allow/forbid disk spilling under memory pressure (see
    /// [`JoinConfigBuilder::with_spill`]).
    pub fn with_spill(mut self, on: bool) -> Self {
        self.builder = self.builder.with_spill(on);
        self
    }

    /// Execute through the composable operator pipeline
    /// (`mmjoin_core::pipeline`) instead of the monolithic driver:
    /// [`crate::pipeline::BuildSide::prepare`] then a one-stage fused
    /// probe. Identical matches and checksum; only the ported
    /// algorithms ([`crate::pipeline::PORTED`]) accept it — the rest
    /// return [`JoinError::PipelineUnsupported`].
    pub fn with_pipeline(mut self, fused: bool) -> Self {
        self.pipeline = fused;
        self
    }

    /// Use a fully-formed configuration, bypassing the builder knobs
    /// (they are ignored when this is set).
    pub fn with_config(mut self, cfg: JoinConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Validate the plan against the actual relations and execute it.
    pub fn run(&self, r: &Relation, s: &Relation) -> Result<JoinResult, JoinError> {
        self.run_inner(r, s)
    }
}

impl Join {
    fn run_inner(&self, r: &Relation, s: &Relation) -> Result<JoinResult, JoinError> {
        let cfg = match &self.config {
            Some(cfg) => cfg.clone(),
            None => self.builder.clone().build()?,
        };
        // Array joins index a payload array by key; a key beyond the
        // domain would be an out-of-bounds write deep in the build loop.
        if self.algorithm.needs_dense_domain() {
            if let Some(max_key) = r.tuples().iter().map(|t| t.key).max() {
                let domain = cfg.domain(r.len());
                if max_key as usize > domain {
                    return Err(JoinError::DomainExceeded {
                        algorithm: self.algorithm,
                        max_key,
                        domain,
                    });
                }
            }
        }
        if self.pipeline {
            let side = crate::pipeline::BuildSide::prepare(self.algorithm, r, &cfg)?;
            let radix_bits = side.radix_bits();
            let pres = crate::pipeline::Pipeline::new()
                .with_stage(side)
                .with_config(cfg)
                .run(s)?;
            let mut result = JoinResult::new(self.algorithm);
            result.radix_bits = radix_bits;
            result.matches = pres.matches;
            result.checksum = pres.checksum;
            result.phases = pres.phases;
            return Ok(result);
        }
        dispatch(self.algorithm, r, s, &cfg)
    }
}

/// Dispatch underneath [`Join::run`].
///
/// The `catch_unwind` here is the outer fault boundary: a panic that
/// escapes a driver — a [`crate::fault::WorkerPanic`] re-raised by the
/// executor, or a panic on the submitting thread itself — becomes
/// [`JoinError::WorkerPanicked`] instead of unwinding into the caller.
/// The executor has already completed the phase barrier and healed the
/// pool by the time the payload reaches this frame.
pub(crate) fn dispatch(
    algorithm: Algorithm,
    r: &Relation,
    s: &Relation,
    cfg: &JoinConfig,
) -> Result<JoinResult, JoinError> {
    match catch_unwind(AssertUnwindSafe(|| dispatch_inner(algorithm, r, s, cfg))) {
        Ok(res) => res,
        Err(payload) => Err(JoinError::WorkerPanicked {
            phase: crate::fault::current_phase(),
            payload: crate::fault::panic_message(payload.as_ref()),
        }),
    }
}

fn dispatch_inner(
    algorithm: Algorithm,
    r: &Relation,
    s: &Relation,
    cfg: &JoinConfig,
) -> Result<JoinResult, JoinError> {
    match algorithm {
        Algorithm::Nop => crate::nop::join_nop(r, s, cfg),
        Algorithm::Nopa => crate::nop::join_nopa(r, s, cfg),
        Algorithm::Chtj => crate::chtj::join_chtj(r, s, cfg),
        Algorithm::Mway => crate::mway::join_mway(r, s, cfg),
        Algorithm::Prb => crate::prb::join_prb(r, s, cfg),
        Algorithm::Pro => crate::pro::join_pro(r, s, cfg, TableKind::Chained, false),
        Algorithm::Prl => crate::pro::join_pro(r, s, cfg, TableKind::Linear, false),
        Algorithm::Pra => crate::pro::join_pro(r, s, cfg, TableKind::Array, false),
        Algorithm::ProIs => crate::pro::join_pro(r, s, cfg, TableKind::Chained, true),
        Algorithm::PrlIs => crate::pro::join_pro(r, s, cfg, TableKind::Linear, true),
        Algorithm::PraIs => crate::pro::join_pro(r, s, cfg, TableKind::Array, true),
        Algorithm::Cprl => crate::pro::join_cpr(r, s, cfg, TableKind::Linear),
        Algorithm::Cpra => crate::pro::join_cpr(r, s, cfg, TableKind::Array),
        Algorithm::Shhj => crate::shhj::join_shhj(r, s, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
    use mmjoin_util::{Placement, Relation, Tuple};

    #[test]
    fn builder_validates_threads() {
        assert_eq!(
            JoinConfig::builder().with_threads(0).build().unwrap_err(),
            JoinError::InvalidConfig {
                field: "threads",
                value: 0,
                reason: "must be >= 1",
            }
        );
        assert_eq!(
            JoinConfig::builder()
                .with_sim_threads(0)
                .build()
                .unwrap_err(),
            JoinError::InvalidConfig {
                field: "sim_threads",
                value: 0,
                reason: "must be >= 1 when set",
            }
        );
        let cfg = JoinConfig::builder()
            .with_threads(3)
            .with_sim_threads(32)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.sim_threads(), 32);
    }

    /// Regression: an oversubscribed thread count surfaces at build
    /// time as a typed `InvalidConfig`, not as an executor blow-up.
    #[test]
    fn builder_rejects_oversubscribed_threads() {
        let err = JoinConfig::builder()
            .with_threads(MAX_THREADS + 1)
            .build()
            .unwrap_err();
        match err {
            JoinError::InvalidConfig { field, value, .. } => {
                assert_eq!(field, "threads");
                assert_eq!(value, MAX_THREADS + 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("oversubscribed"));
        // The boundary itself is accepted.
        assert!(JoinConfig::builder()
            .with_threads(MAX_THREADS)
            .build()
            .is_ok());
    }

    /// Regression: 0-bit fanout is a builder-time error, as are absurd
    /// fanouts past `MAX_RADIX_BITS`.
    #[test]
    fn builder_validates_radix_bits() {
        for bits in [0, MAX_RADIX_BITS + 1, 99] {
            assert_eq!(
                JoinConfig::builder()
                    .with_radix_bits(bits)
                    .build()
                    .unwrap_err(),
                JoinError::InvalidConfig {
                    field: "radix_bits",
                    value: bits as usize,
                    reason: "must be in 1..=MAX_RADIX_BITS (24)",
                }
            );
        }
        let cfg = JoinConfig::builder().with_radix_bits(10).build().unwrap();
        assert_eq!(cfg.radix_bits, Some(10));
    }

    #[test]
    fn builder_validates_pipeline_batch() {
        assert_eq!(
            JoinConfig::builder()
                .with_pipeline_batch(0)
                .build()
                .unwrap_err(),
            JoinError::InvalidConfig {
                field: "pipeline_batch",
                value: 0,
                reason: "must be >= 1",
            }
        );
        let cfg = JoinConfig::builder()
            .with_pipeline_batch(256)
            .build()
            .unwrap();
        assert_eq!(cfg.pipeline_batch, 256);
    }

    #[test]
    fn builder_knobs_land_in_config() {
        let cfg = JoinConfig::builder()
            .with_zipf(0.75)
            .with_key_domain(123_456)
            .with_skew_handling(true)
            .with_simulate(false)
            .with_unique_build_keys(false)
            .build()
            .unwrap();
        assert_eq!(cfg.probe_theta, 0.75);
        assert_eq!(cfg.key_domain, 123_456);
        assert!(cfg.skew_handling);
        assert!(!cfg.simulate);
        assert!(!cfg.unique_build_keys);
    }

    #[test]
    fn sparse_keys_rejected_for_dense_algorithms() {
        let r = Relation::from_tuples(
            &[Tuple::new(5, 1), Tuple::new(1_000_000, 2)],
            Placement::Interleaved,
        );
        let s = Relation::from_tuples(&[Tuple::new(5, 9)], Placement::Interleaved);
        let err = Join::new(Algorithm::Pra)
            .with_threads(2)
            .with_simulate(false)
            .run(&r, &s)
            .unwrap_err();
        match err {
            JoinError::DomainExceeded {
                algorithm,
                max_key,
                domain,
            } => {
                assert_eq!(algorithm, Algorithm::Pra);
                assert_eq!(max_key, 1_000_000);
                assert_eq!(domain, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Widening the declared domain makes the same plan valid.
        let ok = Join::new(Algorithm::Pra)
            .with_threads(2)
            .with_simulate(false)
            .with_key_domain(1_000_000)
            .run(&r, &s)
            .unwrap();
        assert_eq!(ok.matches, 1);
    }

    #[test]
    fn join_builder_runs() {
        let r = gen_build_dense(2_000, 51, Placement::Interleaved);
        let s = gen_probe_fk(8_000, 2_000, 52, Placement::Interleaved);
        let res = Join::new(Algorithm::Prl)
            .with_threads(4)
            .with_radix_bits(5)
            .with_simulate(false)
            .run(&r, &s)
            .unwrap();
        assert_eq!(res.matches, 8_000);
    }

    /// `with_pipeline(true)` must agree with the monolithic driver for
    /// every ported algorithm and reject the rest with a typed error.
    #[test]
    fn pipeline_flag_matches_classic_driver() {
        let r = gen_build_dense(2_000, 53, Placement::Interleaved);
        let s = gen_probe_fk(6_000, 2_000, 54, Placement::Interleaved);
        for alg in crate::pipeline::PORTED {
            let classic = Join::new(alg)
                .with_threads(4)
                .with_simulate(false)
                .run(&r, &s)
                .unwrap();
            let fused = Join::new(alg)
                .with_threads(4)
                .with_simulate(false)
                .with_pipeline(true)
                .run(&r, &s)
                .unwrap();
            assert_eq!(fused.matches, classic.matches, "{alg}");
            assert_eq!(fused.checksum, classic.checksum, "{alg}");
            assert!(!fused.phases.is_empty(), "{alg}");
        }
        let err = Join::new(Algorithm::Mway)
            .with_threads(2)
            .with_simulate(false)
            .with_pipeline(true)
            .run(&r, &s)
            .unwrap_err();
        assert_eq!(
            err,
            JoinError::PipelineUnsupported {
                algorithm: Algorithm::Mway
            }
        );
    }

    #[test]
    fn config_override_wins() {
        let r = gen_build_dense(500, 61, Placement::Interleaved);
        let s = gen_probe_fk(1_000, 500, 62, Placement::Interleaved);
        let mut cfg = JoinConfig::new(2);
        cfg.simulate = false;
        // Builder knobs are ignored once an explicit config is supplied.
        let res = Join::new(Algorithm::Nop)
            .with_threads(999)
            .with_config(cfg)
            .run(&r, &s)
            .unwrap();
        assert_eq!(res.matches, 1_000);
    }

    #[test]
    fn descriptors_span_table_two() {
        use Algorithm as A;
        assert_eq!(
            A::Nop.descriptor(),
            AlgorithmDescriptor {
                family: Family::NoPartitioning,
                table: TableFlavor::LockFreeLinear,
                scheduling: Scheduling::ChunkParallel,
                partitioning: Partitioning::None,
            }
        );
        assert_eq!(A::Mway.descriptor().family, Family::SortMerge);
        assert_eq!(
            A::Prb.descriptor().partitioning,
            Partitioning::TwoPassDirect
        );
        assert_eq!(A::Cpra.descriptor().partitioning, Partitioning::Chunked);
        assert_eq!(A::PrlIs.descriptor().scheduling, Scheduling::NumaRoundRobin);
        for a in A::ALL {
            let d = a.descriptor();
            assert_eq!(a.is_partitioned(), d.family == Family::Partitioned, "{a}");
            assert_eq!(
                a.needs_dense_domain(),
                matches!(d.table, TableFlavor::Array | TableFlavor::LockFreeArray),
                "{a}"
            );
        }
    }

    #[test]
    fn parse_reports_unknown_names() {
        assert_eq!(Algorithm::parse("cprl"), Ok(Algorithm::Cprl));
        let err = Algorithm::parse("frobnicate").unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        assert!(err.to_string().contains("CPRL"));
    }

    /// Regression: an empty build relation must flow through every
    /// algorithm without hanging or panicking (the linear tables used to
    /// construct zero-slot tables whose probe loops had no empty-slot
    /// terminator).
    #[test]
    fn empty_build_relation_all_algorithms() {
        let r = Relation::from_tuples(&[], Placement::Interleaved);
        let s = gen_probe_fk(2_000, 500, 71, Placement::Interleaved);
        for alg in Algorithm::ALL {
            let res = Join::new(alg)
                .with_threads(2)
                .with_simulate(false)
                .run(&r, &s)
                .unwrap();
            assert_eq!(res.matches, 0, "{alg}");
        }
    }

    /// All thirteen algorithms must produce the reference checksum with
    /// the hardware kernels force-enabled, and the forced-portable run
    /// must agree bit-for-bit.
    #[test]
    fn all_algorithms_match_reference_under_both_kernel_modes() {
        let n = 3_000;
        let r = gen_build_dense(n, 81, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(4 * n, n, 82, Placement::Chunked { parts: 4 });
        let expect = crate::reference::reference_join(&r, &s);
        for alg in Algorithm::ALL {
            let run = |mode| {
                Join::new(alg)
                    .with_threads(4)
                    .with_simulate(false)
                    .with_kernel_mode(mode)
                    .run(&r, &s)
                    .unwrap()
            };
            let simd = run(KernelMode::Simd);
            let portable = run(KernelMode::Portable);
            assert_eq!(simd.matches, expect.count, "{alg} simd");
            assert_eq!(simd.checksum, expect.digest, "{alg} simd");
            assert_eq!(portable.matches, expect.count, "{alg} portable");
            assert_eq!(portable.checksum, expect.digest, "{alg} portable");
        }
        // Leave the process-wide mode as the environment would set it.
        mmjoin_util::kernels::set_mode(KernelMode::Auto);
    }
}
