//! Property-based tests (proptest) on the core invariants:
//!
//! * every join algorithm ≡ the reference join on arbitrary key multisets,
//! * radix partitioning is a digit-respecting permutation,
//! * the CHT answers exactly like a `HashMap`,
//! * Equation (1) respects its cache-budget contract,
//! * sort substrate ≡ `sort_unstable`.

use proptest::prelude::*;

use mmjoin::core::reference::reference_join;
use mmjoin::core::{Algorithm, Join, JoinConfig};
use mmjoin::hashtable::ConciseHashTable;
use mmjoin::partition::{partition_parallel, RadixFn, ScatterMode};
use mmjoin::sort::mergesort::sort_packed;
use mmjoin::util::{Placement, Relation, Tuple};

fn tuples_strategy(max_len: usize, key_range: u32) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec((1u32..=key_range, 0u32..1_000_000), 0..max_len)
        .prop_map(|v| v.into_iter().map(|(k, p)| Tuple::new(k, p)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn joins_match_reference_on_arbitrary_multisets(
        r_tuples in tuples_strategy(300, 64),
        s_tuples in tuples_strategy(600, 96),
        threads in 1usize..5,
    ) {
        let r = Relation::from_tuples(&r_tuples, Placement::Interleaved);
        let s = Relation::from_tuples(&s_tuples, Placement::Interleaved);
        let expect = reference_join(&r, &s);
        // NOPA/PRA/CPRA require unique keys; test the multiset-tolerant
        // algorithms here (uniqueness is covered by the dense workloads).
        for alg in [
            Algorithm::Nop,
            Algorithm::Chtj,
            Algorithm::Mway,
            Algorithm::Prb,
            Algorithm::Pro,
            Algorithm::Prl,
            Algorithm::ProIs,
            Algorithm::PrlIs,
            Algorithm::Cprl,
        ] {
            let mut cfg = JoinConfig::new(threads);
            cfg.simulate = false;
            cfg.radix_bits = Some(4);
            cfg.key_domain = 96;
            cfg.unique_build_keys = false; // arbitrary multisets
            let res = Join::new(alg).with_config(cfg).run(&r, &s).expect("valid plan");
            prop_assert_eq!(res.matches, expect.count, "{}", alg.name());
            prop_assert_eq!(res.checksum, expect.digest, "{}", alg.name());
        }
    }

    #[test]
    fn partitioning_is_a_digit_respecting_permutation(
        tuples in tuples_strategy(800, u32::MAX - 1),
        bits in 1u32..8,
        threads in 1usize..5,
    ) {
        let f = RadixFn::new(bits);
        let pr = partition_parallel(&tuples, f, threads, ScatterMode::Swwcb);
        // Digits respected.
        for p in 0..pr.parts() {
            for t in pr.partition(p) {
                prop_assert_eq!(f.part(t.key), p);
            }
        }
        // Permutation.
        let mut a: Vec<u64> = tuples.iter().map(|t| t.pack()).collect();
        let mut b: Vec<u64> = pr.all_tuples().iter().map(|t| t.pack()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cht_equals_hashmap(
        tuples in tuples_strategy(500, 200),
        probes in prop::collection::vec(1u32..=220, 0..100),
        threads in 1usize..5,
    ) {
        use std::collections::HashMap;
        let cht = ConciseHashTable::<mmjoin::hashtable::MultiplicativeHash>::build(&tuples, threads);
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for t in &tuples {
            map.entry(t.key).or_default().push(t.payload);
        }
        for key in probes {
            let mut got = Vec::new();
            cht.probe(key, |p| got.push(p));
            got.sort_unstable();
            let mut want = map.get(&key).cloned().unwrap_or_default();
            want.sort_unstable();
            prop_assert_eq!(got, want, "key {}", key);
        }
    }

    #[test]
    fn sort_substrate_equals_std_sort(mut data in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scratch = mmjoin::util::alloc::AlignedVec::new();
        sort_packed(&mut data, &mut scratch);
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn equation_one_tables_respect_cache_budget(
        r_log in 14u32..31,
        llc_t in (1usize << 18)..(1usize << 23),
    ) {
        use mmjoin::partition::{predict_radix_bits, BitsInput};
        let r = 1usize << r_log;
        let input = BitsInput::paper_defaults(r, llc_t);
        let bits = predict_radix_bits(&input);
        // Contract: the per-partition table fits whichever cache the
        // branch targeted (L2 or the per-thread LLC share) within the
        // ceil-rounding slack of one doubling.
        let table_bytes = r as f64 * 8.0 / 0.5 / 2f64.powi(bits as i32);
        prop_assert!(
            table_bytes <= llc_t.max(256 * 1024) as f64 * 2.0,
            "r=2^{} bits={} table={}",
            r_log, bits, table_bytes
        );
    }
}
