//! Differential suite for the fused operator pipeline (DESIGN.md §12):
//! for every ported driver and both kernel modes, a fused two-join chain
//! `(R1 ⋈ S) ⋈ R2 ON R1.payload = R2.key` must produce exactly the
//! matches and checksum of the materialized two-step baseline
//! (`materialize::chain_two_step`), across uniform, skewed, and
//! duplicate-key workloads.
//!
//! Lives in its own binary: `join_api_matrix.rs` pins a process-wide
//! thread count for its spawn-counter assertions, and this suite wants
//! its own.

use mmjoin::core::materialize::chain_two_step;
use mmjoin::core::pipeline::{BuildSide, Pipeline, PORTED};
use mmjoin::core::{Algorithm, JoinConfig, KernelMode};
use mmjoin::datagen::{gen_build_dense, gen_build_linked, gen_probe_fk, gen_probe_zipf};
use mmjoin::util::{Placement, Relation, Tuple};

const THREADS: usize = 4;
/// Stage-one build cardinality.
const N1: usize = 2_000;
/// Stage-two build cardinality (= stage one's payload link domain).
const N2: usize = 700;
/// Probe cardinality.
const M: usize = 8_000;

const MODES: [KernelMode; 2] = [KernelMode::Portable, KernelMode::Simd];

fn chain_cfg(unique: bool, mode: KernelMode) -> JoinConfig {
    JoinConfig::builder()
        .with_threads(THREADS)
        .with_simulate(false)
        .with_unique_build_keys(unique)
        .with_kernel_mode(mode)
        .build()
        .expect("valid config")
}

/// Fused two-stage pipeline vs. materialized two-step plan: identical
/// matches and checksum, and the fused run reports the intermediate
/// tuples it never wrote.
fn assert_fused_equals_two_step(
    alg: Algorithm,
    r1: &Relation,
    r2: &Relation,
    s: &Relation,
    unique: bool,
    mode: KernelMode,
    tag: &str,
) {
    let cfg = chain_cfg(unique, mode);
    let base = chain_two_step(r1, r2, s, alg, &cfg).expect("two-step baseline");
    let stage1 = BuildSide::prepare(alg, r1, &cfg).expect("stage-1 build side");
    let stage2 = BuildSide::prepare(alg, r2, &cfg).expect("stage-2 build side");
    let fused = Pipeline::new()
        .with_stage(stage1)
        .with_stage(stage2)
        .with_config(cfg)
        .run(s)
        .expect("fused pipeline");
    assert_eq!(fused.matches, base.matches, "{alg}/{mode:?}/{tag}: matches");
    assert_eq!(
        fused.checksum, base.checksum,
        "{alg}/{mode:?}/{tag}: checksum"
    );
    if base.matches > 0 {
        assert!(
            fused.intermediate_matches > 0,
            "{alg}/{mode:?}/{tag}: a non-empty chain crosses the stage boundary"
        );
        assert!(
            fused.bytes_avoided > 0,
            "{alg}/{mode:?}/{tag}: late materialization avoided bytes"
        );
    }
}

fn chain_builds() -> (Relation, Relation) {
    let r1 = gen_build_linked(N1, N2, 101, Placement::Chunked { parts: 4 });
    let r2 = gen_build_dense(N2, 102, Placement::Chunked { parts: 4 });
    (r1, r2)
}

#[test]
fn uniform_chain_all_ported_drivers_both_kernel_modes() {
    let (r1, r2) = chain_builds();
    let s = gen_probe_fk(M, N1, 103, Placement::Chunked { parts: 4 });
    for alg in PORTED {
        for mode in MODES {
            assert_fused_equals_two_step(alg, &r1, &r2, &s, true, mode, "uniform");
        }
    }
}

#[test]
fn skewed_chain_all_ported_drivers_both_kernel_modes() {
    let (r1, r2) = chain_builds();
    let s = gen_probe_zipf(M, N1, 0.99, 104, Placement::Chunked { parts: 4 });
    for alg in PORTED {
        for mode in MODES {
            assert_fused_equals_two_step(alg, &r1, &r2, &s, true, mode, "zipf-0.99");
        }
    }
}

#[test]
fn duplicate_probe_key_chain_all_ported_drivers_both_kernel_modes() {
    let (r1, r2) = chain_builds();
    // Every probe key drawn from the 97 hottest slots of R1's domain:
    // massive probe-side duplication, every probe a hit.
    let s = gen_probe_fk(M, 97, 105, Placement::Chunked { parts: 4 });
    for alg in PORTED {
        for mode in MODES {
            assert_fused_equals_two_step(alg, &r1, &r2, &s, true, mode, "dup-probe");
        }
    }
}

#[test]
fn duplicate_build_key_chain_multiset_drivers_both_kernel_modes() {
    // Multiset build: every stage-1 key appears several times, so one
    // probe fans out into several chained probes. Only the hash-table
    // drivers accept duplicate build keys (array and concise-hash sides
    // hold one payload per key), and the PK assumption must be off.
    let dup: Vec<Tuple> = (0..N1)
        .map(|i| Tuple::new((i % 600) as u32 + 1, (i * 31 % N2) as u32 + 1))
        .collect();
    let r1 = Relation::from_tuples(&dup, Placement::Chunked { parts: 4 });
    let r2 = gen_build_dense(N2, 106, Placement::Chunked { parts: 4 });
    let s = gen_probe_fk(M / 4, 600, 107, Placement::Chunked { parts: 4 });
    for alg in [Algorithm::Nop, Algorithm::Pro, Algorithm::Prl] {
        for mode in MODES {
            assert_fused_equals_two_step(alg, &r1, &r2, &s, false, mode, "dup-build");
        }
    }
}

/// The fused flag on the classic `Join` front door agrees with the
/// explicit `Pipeline` composition for a single stage.
#[test]
fn join_with_pipeline_agrees_with_explicit_pipeline() {
    use mmjoin::core::Join;
    let r = gen_build_dense(N1, 108, Placement::Chunked { parts: 4 });
    let s = gen_probe_fk(M, N1, 109, Placement::Chunked { parts: 4 });
    for alg in PORTED {
        let via_join = Join::new(alg)
            .with_threads(THREADS)
            .with_simulate(false)
            .with_pipeline(true)
            .run(&r, &s)
            .expect("fused Join");
        let cfg = chain_cfg(true, KernelMode::Auto);
        let side = BuildSide::prepare(alg, &r, &cfg).expect("build side");
        let via_pipeline = Pipeline::new()
            .with_stage(side)
            .with_config(cfg)
            .run(&s)
            .expect("explicit pipeline");
        assert_eq!(via_join.matches, via_pipeline.matches, "{alg}");
        assert_eq!(via_join.checksum, via_pipeline.checksum, "{alg}");
    }
}
