//! Property-based tests on the NUMA phase simulator: physical sanity
//! invariants that must hold for any task mix.

use proptest::prelude::*;

use mmjoin::numamodel::{simulate_phase, CostModel, TaskSpec, Topology};

fn task_strategy(nodes: usize) -> impl Strategy<Value = TaskSpec> {
    (
        prop::collection::vec(0.0f64..1e8, nodes),
        prop::collection::vec(0.0f64..1e5, nodes),
        0.0f64..1e6,
        0usize..nodes,
    )
        .prop_map(move |(streams, randoms, cpu, home)| {
            let mut t = TaskSpec::new(nodes);
            for (n, &b) in streams.iter().enumerate() {
                t.stream(n, b);
            }
            for (n, &r) in randoms.iter().enumerate() {
                t.random(n, r);
            }
            t.cpu(cpu);
            t.on_node(home);
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn makespan_bounds(
        tasks in prop::collection::vec(task_strategy(4), 1..24),
        threads in 1usize..64,
    ) {
        let topo = Topology::paper_machine();
        let model = CostModel::paper_machine();
        let order: Vec<usize> = (0..tasks.len()).collect();
        let sim = simulate_phase(&topo, &model, threads, &tasks, &order);

        // Lower bound: total bytes over aggregate peak bandwidth
        // (random accesses cost 2 cache lines of DRAM bandwidth each).
        let total_bytes: f64 = tasks
            .iter()
            .map(|t| {
                t.total_stream_bytes()
                    + t.random_accesses.iter().sum::<f64>() * 128.0
            })
            .sum();
        let agg_bw = model.node_bandwidth * topo.nodes as f64;
        prop_assert!(
            sim.duration + 1e-12 >= total_bytes / agg_bw,
            "makespan {} below bandwidth bound {}",
            sim.duration,
            total_bytes / agg_bw
        );

        // Upper bound: strictly serial execution on the slowest path.
        let serial: f64 = tasks
            .iter()
            .map(|t| {
                let bytes = t.total_stream_bytes()
                    + t.random_accesses.iter().sum::<f64>() * 128.0;
                let stall = t.cpu_ops * model.cpu_op * model.smt_penalty
                    + t.random_accesses.iter().sum::<f64>() * model.remote_latency / model.mlp
                    + t.tlb_misses * model.tlb_miss;
                bytes / model.link_bandwidth.min(model.node_bandwidth) + stall
            })
            .sum();
        prop_assert!(
            sim.duration <= serial * (1.0 + 1e-9) + 1e-12,
            "makespan {} above serial bound {}",
            sim.duration,
            serial
        );

        // Node busy time integrates to exactly the bytes served.
        for n in 0..topo.nodes {
            let node_bytes: f64 = tasks
                .iter()
                .map(|t| t.stream_bytes[n] + t.random_accesses[n] * 128.0)
                .sum();
            let served = sim.node_busy[n] * model.node_bandwidth;
            prop_assert!(
                (served - node_bytes).abs() <= node_bytes.max(1.0) * 1e-6,
                "node {n}: served {served} vs demanded {node_bytes}"
            );
        }
    }

    #[test]
    fn more_threads_never_hurt_without_smt(
        tasks in prop::collection::vec(task_strategy(4), 1..16),
    ) {
        let topo = Topology::paper_machine();
        let model = CostModel::paper_machine();
        let order: Vec<usize> = (0..tasks.len()).collect();
        let t2 = simulate_phase(&topo, &model, 2, &tasks, &order).duration;
        let t8 = simulate_phase(&topo, &model, 8, &tasks, &order).duration;
        // Greedy list scheduling with bandwidth coupling admits small
        // anomalies; what must not happen is more threads making the
        // phase materially slower.
        prop_assert!(t8 <= t2 * 1.15 + 1e-12, "{t8} > {t2}");
    }

    #[test]
    fn all_tasks_finish(
        tasks in prop::collection::vec(task_strategy(3), 1..12),
        threads in 1usize..8,
    ) {
        let mut topo = Topology::paper_machine();
        topo.nodes = 3;
        let model = CostModel::paper_machine();
        let order: Vec<usize> = (0..tasks.len()).collect();
        let sim = simulate_phase(&topo, &model, threads, &tasks, &order);
        prop_assert_eq!(sim.task_finish.len(), tasks.len());
        for (i, &f) in sim.task_finish.iter().enumerate() {
            prop_assert!(f <= sim.duration + 1e-12, "task {i} finishes after the phase");
        }
    }
}
