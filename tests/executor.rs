//! Integration tests for the persistent morsel executor: the phase
//! barrier's happens-before edge, steal accounting under skewed queues,
//! and pool reuse across joins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mmjoin::core::executor::{build_queues, Executor, QueuePolicy};
use mmjoin::core::{Algorithm, Join, JoinConfig};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk};
use mmjoin::util::pool::{broadcast_map, WorkerPool};
use mmjoin::util::Placement;

/// Phase N's writes must be visible to phase N+1 without any ordering
/// stronger than Relaxed inside the phases themselves: the barrier in
/// `broadcast` is the only thing publishing them (the same edge the
/// lock-free join tables rely on between build and probe).
#[test]
fn barrier_publishes_phase_writes() {
    let pool = Executor::new(6);
    let n = pool.spawned_workers();
    let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    for round in 1..=20u64 {
        pool.broadcast(&|w| {
            slots[w].store(round * (w as u64 + 1), Ordering::Relaxed);
        });
        let sums = broadcast_map(&pool, n, |_| {
            slots.iter().map(|s| s.load(Ordering::Relaxed)).sum::<u64>()
        });
        let expect = round * (n as u64 * (n as u64 + 1)) / 2;
        assert!(sums.iter().all(|&s| s == expect), "round {round}: {sums:?}");
    }
}

/// Pile every morsel onto node 0's queue of a two-node policy: the
/// workers homed on node 1 find their queue empty and must steal. The
/// counters have to account for every morsel exactly once.
#[test]
fn steal_counters_under_skewed_queues() {
    let pool = Executor::new(4);
    let parts = 128;
    // Partitions 0..64 all map to node 0 of a 2-node split.
    let order: Vec<usize> = (0..64).collect();
    let queues = build_queues(&order, parts, QueuePolicy::NumaLocal { nodes: 2 });
    assert_eq!(queues.len(), 2);
    assert_eq!(queues[0].len(), 64);
    assert!(queues[1].is_empty());

    pool.drain_counters();
    let ran: Vec<AtomicU64> = (0..parts).map(|_| AtomicU64::new(0)).collect();
    pool.run_morsels(&queues, &|_, p| {
        ran[p].fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_micros(500));
    });
    let c = pool.drain_counters();
    assert_eq!(c.tasks, 64, "every morsel ran exactly once");
    for (p, r) in ran.iter().enumerate().take(64) {
        assert_eq!(r.load(Ordering::Relaxed), 1, "partition {p}");
    }
    assert!(c.steals > 0, "node-1 workers had nothing local: {c:?}");
    assert!(c.steals <= c.tasks, "{c:?}");
}

/// The pool is created once per thread count and reused by every
/// subsequent join: two configs, four joins, one executor.
#[test]
fn pool_is_reused_across_joins_and_configs() {
    let threads = 5;
    let r = gen_build_dense(2_000, 71, Placement::Chunked { parts: 4 });
    let s = gen_probe_fk(8_000, 2_000, 72, Placement::Chunked { parts: 4 });
    let cfg_a = JoinConfig::builder()
        .with_threads(threads)
        .with_simulate(false)
        .build()
        .unwrap();
    let cfg_b = JoinConfig::builder()
        .with_threads(threads)
        .with_simulate(false)
        .build()
        .unwrap();
    for alg in [Algorithm::Pro, Algorithm::Cprl] {
        let a = Join::new(alg)
            .with_config(cfg_a.clone())
            .run(&r, &s)
            .unwrap();
        let b = Join::new(alg)
            .with_config(cfg_b.clone())
            .run(&r, &s)
            .unwrap();
        assert_eq!(a.matches, 8_000);
        assert_eq!(a.checksum, b.checksum);
        // Both runs carried executor counters in every phase.
        for res in [&a, &b] {
            assert!(
                res.phases.iter().all(|p| p.exec.tasks > 0),
                "{alg}: {:?}",
                res.phases
            );
        }
    }
    let a = cfg_a.executor();
    let b = cfg_b.executor();
    assert!(Arc::ptr_eq(&a, &b), "same thread count, same pool");
    assert_eq!(a.spawned_workers(), threads);
}
