//! Integration: the allocation policy must never change a join's
//! answer, only where its buffers live. All fourteen drivers are run
//! under the portable heap, THP arenas, and interleaved arenas and must
//! produce identical checksums; forced syscall failures (hugepages
//! unavailable, `mbind` ENOSYS/EPERM, mmap refused) must degrade
//! silently — the join succeeds, the fallback is recorded in the
//! result's per-phase alloc counters, never an error.
//!
//! The policy cell and the failure-injection mask are process-global,
//! so every test here serializes on one mutex and restores the portable
//! default before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use mmjoin::core::reference::reference_join;
use mmjoin::core::{Algorithm, Join, JoinConfig};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk};
use mmjoin::util::mem::{self, AllocPolicy, FAIL_HUGETLB, FAIL_MBIND, FAIL_MMAP};
use mmjoin::util::{Placement, Relation};

/// Serialize tests and guarantee clean global state on exit (including
/// panicking exits — the guard's Drop runs either way).
struct PolicyLock(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for PolicyLock {
    fn drop(&mut self) {
        mem::set_force_fail(0);
        mem::set_policy(AllocPolicy::Portable);
        mem::pool_clear();
    }
}

fn lock() -> PolicyLock {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let m = LOCK.get_or_init(|| Mutex::new(()));
    PolicyLock(m.lock().unwrap_or_else(|e| e.into_inner()))
}

fn workload(threads: usize) -> (Relation, Relation) {
    let n = 30_000;
    let placement = Placement::Chunked { parts: threads };
    let r = gen_build_dense(n, 91, placement);
    let s = gen_probe_fk(4 * n, n, 92, placement);
    (r, s)
}

fn cfg(threads: usize) -> JoinConfig {
    let mut c = JoinConfig::new(threads);
    c.simulate = false;
    c
}

/// `cfg` with an allocation policy attached. `Join::with_config`
/// bypasses the builder, so the policy must ride on the config itself.
fn cfg_under(threads: usize, policy: AllocPolicy) -> JoinConfig {
    let mut c = cfg(threads);
    c.alloc_policy = Some(policy);
    c
}

#[test]
fn all_drivers_identical_checksums_across_policies() {
    let _guard = lock();
    let threads = 4;
    let (r, s) = workload(threads);
    let expect = reference_join(&r, &s);
    let policies = [
        AllocPolicy::Portable,
        AllocPolicy::THP,
        AllocPolicy::parse("thp+interleave").unwrap(),
    ];
    for policy in policies {
        for alg in Algorithm::WITH_EXTENSIONS {
            let res = Join::new(alg)
                .with_config(cfg_under(threads, policy))
                .run(&r, &s)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", alg.name(), policy.name()));
            assert_eq!(
                res.matches,
                expect.count,
                "{} under {}: count",
                alg.name(),
                policy.name()
            );
            assert_eq!(
                res.checksum,
                expect.digest,
                "{} under {}: checksum",
                alg.name(),
                policy.name()
            );
        }
    }
}

#[test]
fn mapped_policy_actually_maps_and_pools() {
    let _guard = lock();
    mem::pool_clear();
    let (r, s) = workload(2);
    let before = mem::stats();
    let run = || {
        Join::new(Algorithm::Pro)
            .with_config(cfg_under(2, AllocPolicy::THP))
            .run(&r, &s)
            .expect("join under thp")
    };
    run();
    let cold = mem::stats().delta(&before);
    assert!(cold.mapped_blocks > 0, "no arenas mapped under thp");
    let mark = mem::stats();
    run();
    let warm = mem::stats().delta(&mark);
    assert!(warm.pool_hits > 0, "second join did not reuse the pool");
}

#[test]
fn hugepage_unavailable_degrades_silently_into_phase_stats() {
    let _guard = lock();
    let (r, s) = workload(2);
    let expect = reference_join(&r, &s);
    // A host with no reserved hugepages: MAP_HUGETLB fails, the arena
    // falls back to plain (THP-advised) pages, the join still answers.
    mem::set_force_fail(FAIL_HUGETLB);
    let res = Join::new(Algorithm::Pro)
        .with_config(cfg_under(2, AllocPolicy::parse("hugetlb").unwrap()))
        .run(&r, &s)
        .expect("hugetlb fallback must not fail the join");
    mem::set_force_fail(0);
    assert_eq!(res.checksum, expect.digest);
    let totals = res.alloc_totals();
    assert!(totals.degraded_page > 0, "page downgrade not recorded");
    assert!(totals.degraded(), "degraded() must reflect the downgrade");
    assert!(
        res.phases.iter().any(|p| p.alloc.degraded_page > 0),
        "the downgrade must land in some phase's counters"
    );
}

#[test]
fn mbind_failure_degrades_to_first_touch() {
    let _guard = lock();
    let (r, s) = workload(2);
    let expect = reference_join(&r, &s);
    // mbind returning ENOSYS/EPERM (container seccomp, CONFIG_NUMA=n):
    // placement degrades to first-touch, pages still arrive.
    mem::set_force_fail(FAIL_MBIND);
    let res = Join::new(Algorithm::Pro)
        .with_config(cfg_under(2, AllocPolicy::parse("thp+interleave").unwrap()))
        .run(&r, &s)
        .expect("mbind fallback must not fail the join");
    mem::set_force_fail(0);
    assert_eq!(res.checksum, expect.digest);
    assert!(
        res.alloc_totals().degraded_numa > 0,
        "NUMA downgrade not recorded"
    );
}

#[test]
fn mmap_refused_falls_back_to_heap() {
    let _guard = lock();
    let (r, s) = workload(2);
    let expect = reference_join(&r, &s);
    // mmap itself refused (strict rlimits, exotic kernels): every
    // would-be arena quietly becomes a heap allocation.
    mem::set_force_fail(FAIL_MMAP);
    let res = Join::new(Algorithm::Pro)
        .with_config(cfg_under(2, AllocPolicy::THP))
        .run(&r, &s)
        .expect("heap fallback must not fail the join");
    mem::set_force_fail(0);
    assert_eq!(res.checksum, expect.digest);
    let totals = res.alloc_totals();
    assert!(totals.heap_fallback > 0, "heap fallback not recorded");
    assert_eq!(totals.mapped_blocks, 0, "nothing may map when mmap fails");
}

#[test]
fn portable_policy_records_nothing() {
    let _guard = lock();
    let (r, s) = workload(2);
    let res = Join::new(Algorithm::Pro)
        .with_config(cfg_under(2, AllocPolicy::Portable))
        .run(&r, &s)
        .expect("portable join");
    let totals = res.alloc_totals();
    assert_eq!(totals, Default::default(), "portable must never touch mmap");
    assert!(!totals.degraded());
}

#[test]
fn join_index_round_trips_under_mapped_policy() {
    let _guard = lock();
    let (r, s) = workload(2);
    let expect = reference_join(&r, &s);
    let c = cfg(2);
    let portable = mem::with_policy(AllocPolicy::Portable, || {
        mmjoin::core::materialize::join_index(&r, &s, &c).expect("portable index")
    });
    let mapped = mem::with_policy(AllocPolicy::THP, || {
        mmjoin::core::materialize::join_index(&r, &s, &c).expect("mapped index")
    });
    assert_eq!(portable.len() as u64, expect.count);
    assert_eq!(
        portable, mapped,
        "materialized output must be bit-identical"
    );
}
