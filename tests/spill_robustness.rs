//! Robustness suite for the spilling hybrid hash join (DESIGN.md §13).
//!
//! The contract under test:
//!
//! * **Differential** — SHHJ's checksum equals the reference join's on
//!   uniform, Zipf-skewed, and duplicate-key workloads at every memory
//!   budget tier from unlimited down to 1/8 of the build bytes,
//!   including budgets that force recursive repartitioning.
//! * **Graceful degradation** — at 1/8 budget the classic in-memory
//!   drivers abort with `MemoryBudgetExceeded` while SHHJ completes.
//! * **Zero orphans** — cancellation, deadlines, injected I/O errors,
//!   and recursion-limit aborts all leave the spill directory empty.
//! * **Typed errors** — spill-file I/O failures surface as
//!   `JoinError::Io`; unseparable skew as `JoinError::SpillRecursionLimit`.

use mmjoin::core::reference::reference_join;
use mmjoin::core::shhj::SPILL_RECURSION_LIMIT;
use mmjoin::core::{Algorithm, Join, JoinConfig, JoinError, JoinResult};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk, gen_probe_zipf};
use mmjoin::util::checksum::JoinChecksum;
use mmjoin::util::{Placement, Relation, Tuple};

const THREADS: usize = 4;

/// Build cardinality for the budget-tier workloads. Sized so the 1/8
/// tier (96 KB) still affords the spill machinery's fixed buffers while
/// forcing multi-level recursive repartitioning.
const BUILD_N: usize = 96_000;

fn placement() -> Placement {
    Placement::Chunked { parts: THREADS }
}

fn cfg(mem_limit: Option<usize>) -> JoinConfig {
    let mut c = JoinConfig::new(THREADS);
    c.simulate = false;
    c.mem_limit = mem_limit;
    c
}

fn run(
    alg: Algorithm,
    r: &Relation,
    s: &Relation,
    c: &JoinConfig,
) -> Result<JoinResult, JoinError> {
    Join::new(alg).with_config(c.clone()).run(r, s)
}

/// Unlimited, comfortably resident, and progressively starved budgets
/// relative to the build side's tuple bytes.
fn budget_tiers(build_bytes: usize) -> Vec<(&'static str, Option<usize>)> {
    vec![
        ("none", None),
        ("2x", Some(build_bytes * 2)),
        ("1x", Some(build_bytes)),
        ("1/2", Some(build_bytes / 2)),
        ("1/4", Some(build_bytes / 4)),
        ("1/8", Some(build_bytes / 8)),
    ]
}

/// A build relation where every key appears twice (payloads differ), to
/// exercise SHHJ's full-collision-run probes and reversed-role builds.
/// Keys start at 1: 0 is the linear tables' empty-slot sentinel, which
/// none of the study's generators produce either.
fn gen_build_dup(pairs: usize) -> Relation {
    let tuples: Vec<Tuple> = (0..2 * pairs)
        .map(|i| Tuple::new((i % pairs) as u32 + 1, i as u32))
        .collect();
    Relation::from_tuples(&tuples, placement())
}

fn assert_matches_reference(label: &str, expect: &JoinChecksum, res: &JoinResult) {
    assert_eq!(res.matches, expect.count, "{label}: match count");
    assert_eq!(res.checksum, expect.digest, "{label}: checksum");
}

#[test]
fn shhj_matches_reference_across_budget_tiers() {
    let workloads: Vec<(&str, bool, Relation, Relation)> = vec![
        (
            "uniform",
            true,
            gen_build_dense(BUILD_N, 11, placement()),
            gen_probe_fk(3 * BUILD_N, BUILD_N, 12, placement()),
        ),
        (
            "zipf",
            true,
            gen_build_dense(BUILD_N, 11, placement()),
            gen_probe_zipf(3 * BUILD_N, BUILD_N, 0.9, 13, placement()),
        ),
        (
            "dup-key",
            false,
            gen_build_dup(BUILD_N / 2),
            gen_probe_fk(BUILD_N, BUILD_N / 2, 14, placement()),
        ),
    ];
    for (name, unique, r, s) in workloads {
        let expect = reference_join(&r, &s);
        let build_bytes = r.len() * 8;
        for (tier, budget) in budget_tiers(build_bytes) {
            let mut c = cfg(budget);
            c.unique_build_keys = unique;
            let label = format!("{name}@{tier}");
            let res = run(Algorithm::Shhj, &r, &s, &c)
                .unwrap_or_else(|e| panic!("{label}: SHHJ failed: {e}"));
            assert_matches_reference(&label, &expect, &res);
            let spill = res.spill_totals();
            match budget {
                // Fully resident: the budget never refuses, so nothing
                // may touch disk.
                None => assert_eq!(spill.bytes_spilled, 0, "{label}: spilled while unlimited"),
                // The starved tier must actually have degraded.
                Some(b) if b == build_bytes / 8 => {
                    assert!(spill.bytes_spilled > 0, "{label}: no spill at 1/8 budget");
                    assert!(spill.partitions_spilled > 0, "{label}: no evictions at 1/8");
                }
                Some(_) => {}
            }
        }
    }
}

#[test]
fn classic_drivers_abort_where_shhj_completes() {
    let r = gen_build_dense(BUILD_N, 21, placement());
    let s = gen_probe_fk(2 * BUILD_N, BUILD_N, 22, placement());
    let expect = reference_join(&r, &s);
    let budget = r.len(); // 1/8 of the build bytes

    let c = cfg(Some(budget));
    match run(Algorithm::Pro, &r, &s, &c) {
        Err(JoinError::MemoryBudgetExceeded {
            requested,
            limit,
            available,
            ..
        }) => {
            assert_eq!(limit, budget);
            assert!(requested > available, "refusal must be over-budget");
        }
        other => panic!("PRO at 1/8 budget: expected MemoryBudgetExceeded, got {other:?}"),
    }

    let res = run(Algorithm::Shhj, &r, &s, &c).expect("SHHJ completes at 1/8 budget");
    assert_matches_reference("SHHJ@1/8", &expect, &res);
    assert!(res.spill_totals().bytes_spilled > 0);

    // Spilling opt-out restores the classic cliff on the same driver.
    let mut no_spill = cfg(Some(budget));
    no_spill.spill = false;
    match run(Algorithm::Shhj, &r, &s, &no_spill) {
        Err(JoinError::MemoryBudgetExceeded { phase, .. }) => assert_eq!(phase, "partition"),
        other => panic!("SHHJ with spill=false: expected MemoryBudgetExceeded, got {other:?}"),
    }
}

/// A scratch parent directory for the join's spill dir, removed (with an
/// emptiness assertion) when dropped.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let path =
            std::env::temp_dir().join(format!("mmjoin-spilltest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("scratch dir");
        ScratchDir(path)
    }

    fn assert_empty(&self, label: &str) {
        let leftover: Vec<_> = std::fs::read_dir(&self.0)
            .expect("scratch dir readable")
            .map(|e| e.expect("dir entry").path())
            .collect();
        assert!(
            leftover.is_empty(),
            "{label}: orphan spill files remain: {leftover:?}"
        );
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn cancel_mid_spill_returns_partial_stats_and_no_orphans() {
    let r = gen_build_dense(BUILD_N, 31, placement());
    let s = gen_probe_fk(2 * BUILD_N, BUILD_N, 32, placement());
    let scratch = ScratchDir::new("cancel");
    let mut c = cfg(Some(r.len())); // 1/8: the spill path is active
    c.spill_dir = Some(scratch.0.clone());
    c.cancel.cancel();
    match run(Algorithm::Shhj, &r, &s, &c) {
        Err(JoinError::Cancelled { partial, .. }) => {
            assert!(
                !partial.is_empty(),
                "cancelled join must surface completed phases"
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    scratch.assert_empty("cancel");
}

#[test]
fn expired_deadline_mid_spill_returns_partial_stats_and_no_orphans() {
    let r = gen_build_dense(BUILD_N, 41, placement());
    let s = gen_probe_fk(2 * BUILD_N, BUILD_N, 42, placement());
    let scratch = ScratchDir::new("deadline");
    let mut c = cfg(Some(r.len()));
    c.spill_dir = Some(scratch.0.clone());
    c.deadline = Some(std::time::Duration::ZERO);
    match run(Algorithm::Shhj, &r, &s, &c) {
        Err(JoinError::Timedout { partial, .. }) => {
            assert!(!partial.is_empty(), "timed-out join must surface phases");
        }
        other => panic!("expected Timedout, got {other:?}"),
    }
    scratch.assert_empty("deadline");
}

#[test]
fn injected_io_error_surfaces_typed_and_clean() {
    let r = gen_build_dense(BUILD_N, 51, placement());
    let s = gen_probe_fk(2 * BUILD_N, BUILD_N, 52, placement());
    let scratch = ScratchDir::new("iofail");
    let mut c = cfg(Some(r.len()));
    c.spill_dir = Some(scratch.0.clone());
    let marker = scratch
        .0
        .file_name()
        .and_then(|n| n.to_str())
        .expect("scratch dir name")
        .to_string();
    {
        // Fail the 4th spill-file operation under our scratch dir (the
        // first writes land mid-scatter, on worker threads).
        let _g = mmjoin::util::spill::iofail::arm(&marker, 3);
        match run(Algorithm::Shhj, &r, &s, &c) {
            Err(JoinError::Io { phase, source }) => {
                assert!(
                    phase == "partition" || phase == "probe" || phase == "spill",
                    "Io in unexpected phase {phase:?}"
                );
                assert!(
                    source.contains("injected"),
                    "unexpected io error text: {source}"
                );
            }
            other => panic!("expected JoinError::Io, got {other:?}"),
        }
    }
    scratch.assert_empty("iofail");

    // Disarmed, the identical join succeeds in the same directory.
    let expect = reference_join(&r, &s);
    let res = run(Algorithm::Shhj, &r, &s, &c).expect("join after disarm");
    assert_matches_reference("post-iofail", &expect, &res);
    scratch.assert_empty("post-iofail");
}

#[test]
fn unseparable_skew_hits_typed_recursion_limit() {
    // Every tuple on both sides carries the same key: no radix pass can
    // split the partition, and the 80 KB budget can never hold the
    // 6000-tuple build side, so recursion must bottom out in the typed
    // error instead of looping or blowing the budget.
    let n = 6_000;
    let hot: Vec<Tuple> = (0..n).map(|i| Tuple::new(5, i as u32)).collect();
    let r = Relation::from_tuples(&hot, placement());
    let s = Relation::from_tuples(&hot, placement());
    let scratch = ScratchDir::new("skew");
    let mut c = cfg(Some(80 * 1024));
    c.spill_dir = Some(scratch.0.clone());
    c.radix_bits = Some(2);
    c.unique_build_keys = false;
    match run(Algorithm::Shhj, &r, &s, &c) {
        Err(JoinError::SpillRecursionLimit { depth, limit, .. }) => {
            assert_eq!(limit, SPILL_RECURSION_LIMIT);
            assert_eq!(depth, SPILL_RECURSION_LIMIT);
        }
        other => panic!("expected SpillRecursionLimit, got {other:?}"),
    }
    scratch.assert_empty("skew");
}

#[test]
fn spill_counters_attribute_bytes_to_phases() {
    let r = gen_build_dense(BUILD_N, 61, placement());
    let s = gen_probe_fk(2 * BUILD_N, BUILD_N, 62, placement());
    let c = cfg(Some(r.len())); // 1/8
    let res = run(Algorithm::Shhj, &r, &s, &c).expect("SHHJ at 1/8");
    let by_name = |name: &str| {
        res.phases
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("missing phase {name}"))
    };
    // R evictions are charged to the partition phase, S evictions to the
    // probe phase, recursion rewrites to the spill phase.
    assert!(by_name("partition").spill.bytes_spilled > 0);
    assert!(by_name("partition").spill.partitions_spilled > 0);
    assert!(by_name("probe").spill.bytes_spilled > 0);
    let total = res.spill_totals();
    assert_eq!(
        total.bytes_spilled,
        res.phases
            .iter()
            .map(|p| p.spill.bytes_spilled)
            .sum::<u64>()
    );
    assert!(total.recursion_depth >= 1, "1/8 budget must recurse");
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use mmjoin::core::fault::failpoints::{arm_local, FailAction};

    /// Panic injected into `point` must surface as `WorkerPanicked`
    /// naming `phase`, leave no temp files, and the next identical join
    /// must produce the reference checksum.
    fn assert_spill_panic_contained(point: &str, phase: &str, tag: &str) {
        let r = gen_build_dense(BUILD_N, 71, placement());
        let s = gen_probe_fk(2 * BUILD_N, BUILD_N, 72, placement());
        let expect = reference_join(&r, &s);
        let scratch = ScratchDir::new(tag);
        let mut c = cfg(Some(r.len())); // 1/8: all spill machinery active
        c.spill_dir = Some(scratch.0.clone());
        {
            let _g = arm_local(point, FailAction::Panic);
            match run(Algorithm::Shhj, &r, &s, &c) {
                Err(JoinError::WorkerPanicked {
                    phase: got,
                    payload,
                }) => {
                    assert_eq!(got, phase, "{point}: wrong phase label");
                    assert!(payload.contains("failpoint"), "{point}: {payload:?}");
                }
                other => panic!("{point}: expected WorkerPanicked, got {other:?}"),
            }
        }
        scratch.assert_empty(point);
        let res = run(Algorithm::Shhj, &r, &s, &c)
            .unwrap_or_else(|e| panic!("{point}: join after panic failed: {e}"));
        assert_eq!(res.matches, expect.count, "{point}: count after heal");
        assert_eq!(res.checksum, expect.digest, "{point}: checksum after heal");
        scratch.assert_empty(&format!("{point} (healed)"));
    }

    #[test]
    fn phase_panics_contained() {
        assert_spill_panic_contained("SHHJ.partition", "partition", "fp-part");
        assert_spill_panic_contained("SHHJ.probe", "probe", "fp-probe");
        assert_spill_panic_contained("SHHJ.spill", "spill", "fp-spill");
    }

    #[test]
    fn spill_io_loop_panics_contained() {
        assert_spill_panic_contained("SHHJ.spill.read", "spill", "fp-read");
        assert_spill_panic_contained("SHHJ.spill.recurse", "spill", "fp-recurse");
        assert_spill_panic_contained("SHHJ.spill.write", "spill", "fp-write");
    }
}
