//! The observability layer across all thirteen algorithms: span/counter
//! invariants, profile-neutrality of results, and exporter validity.
//!
//! Invariants under test (DESIGN.md §10):
//! * per phase, the worker spans' task counts sum exactly to the
//!   aggregate `ExecCounters::tasks` drained at the same boundary (the
//!   spans and the counters describe the same broadcasts);
//! * steals never exceed tasks, per span and per phase;
//! * barrier idle time is bounded by `workers x phase wall`;
//! * enabling profiling changes no answer (matches, checksum);
//! * profiling off records no spans at all (the zero-cost path).
//!
//! Skew handling stays off here: cooperative co-partition splitting
//! nests inline broadcasts, which fold nested task counts into the
//! enclosing worker's span and void the per-phase sum invariant.

use mmjoin::core::{Algorithm, Join, JoinResult, ProfileConfig};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk};
use mmjoin::util::Placement;
use mmjoin_bench::jsonv;

const THREADS: usize = 3;

fn run(alg: Algorithm, profile: bool) -> JoinResult {
    let placement = Placement::Chunked { parts: THREADS };
    let r = gen_build_dense(9_000, 0xB0B0, placement);
    let s = gen_probe_fk(36_000, 9_000, 0xB0B1, placement);
    let mut join = Join::new(alg)
        .with_threads(THREADS)
        .with_simulate(false)
        .with_radix_bits(4);
    if profile {
        join = join.with_profile(ProfileConfig::on());
    }
    join.run(&r, &s).expect("valid plan")
}

#[test]
fn span_invariants_all_thirteen() {
    for alg in Algorithm::ALL {
        let res = run(alg, true);
        assert!(!res.phases.is_empty(), "{alg}");
        for p in &res.phases {
            assert!(
                !p.workers.is_empty(),
                "{alg}/{}: profiling on but no spans",
                p.name
            );
            let span_tasks: u64 = p.workers.iter().map(|w| w.tasks).sum();
            let span_steals: u64 = p.workers.iter().map(|w| w.steals).sum();
            assert_eq!(
                span_tasks, p.exec.tasks,
                "{alg}/{}: span tasks vs aggregate",
                p.name
            );
            assert_eq!(
                span_steals, p.exec.steals,
                "{alg}/{}: span steals vs aggregate",
                p.name
            );
            assert!(p.exec.steals <= p.exec.tasks, "{alg}/{}", p.name);
            for w in &p.workers {
                assert!(w.worker < THREADS, "{alg}/{}: worker id", p.name);
                assert!(w.steals <= w.tasks, "{alg}/{}: span steals", p.name);
            }
            // Idle time is measured inside the phase: no worker can wait
            // longer than the phase itself (slack for clock granularity).
            let bound = (THREADS as u128) * (p.wall.as_nanos() + 2_000_000);
            assert!(
                (p.exec.idle_ns as u128) <= bound,
                "{alg}/{}: idle {} ns > bound {bound} ns",
                p.name,
                p.exec.idle_ns
            );
        }
    }
}

#[test]
fn profiling_changes_no_answers() {
    for alg in Algorithm::ALL {
        let off = run(alg, false);
        let on = run(alg, true);
        assert_eq!(off.matches, on.matches, "{alg}");
        assert_eq!(off.checksum, on.checksum, "{alg}");
        // Same barrier structure either way.
        let names = |r: &JoinResult| -> Vec<&str> { r.phases.iter().map(|p| p.name).collect() };
        assert_eq!(names(&off), names(&on), "{alg}");
    }
}

#[test]
fn profiling_off_records_nothing() {
    for alg in [Algorithm::Nop, Algorithm::Cprl, Algorithm::Mway] {
        let res = run(alg, false);
        for p in &res.phases {
            assert!(p.workers.is_empty(), "{alg}/{}: stray spans", p.name);
            assert!(!p.counter_totals().any(), "{alg}/{}", p.name);
        }
    }
}

#[test]
fn exporters_emit_valid_json() {
    let results: Vec<JoinResult> = [Algorithm::Cprl, Algorithm::Nop]
        .into_iter()
        .map(|alg| run(alg, true))
        .collect();

    let trace = jsonv::parse(&mmjoin::core::observe::chrome_trace(&results)).expect("trace parses");
    let events = trace.as_arr().expect("trace is an array");
    assert!(events.len() > 4);
    for e in events {
        let ph = e.get("ph").and_then(jsonv::Value::as_str).expect("ph");
        assert!(matches!(ph, "X" | "M"), "unexpected phase type {ph}");
        assert!(e.get("pid").and_then(jsonv::Value::as_num).is_some());
        assert!(e.get("tid").and_then(jsonv::Value::as_num).is_some());
    }
    // Two runs -> two distinct pids.
    let pids: std::collections::HashSet<u64> = events
        .iter()
        .filter_map(|e| e.get("pid").and_then(jsonv::Value::as_num))
        .map(|p| p as u64)
        .collect();
    assert_eq!(pids.len(), 2);

    let metrics = jsonv::parse(&mmjoin::core::observe::metrics(
        &results,
        Some(&mmjoin_bench::harness::meta_json()),
    ))
    .expect("metrics parse");
    let runs = metrics.get("runs").and_then(jsonv::Value::as_arr).unwrap();
    assert_eq!(runs.len(), 2);
    for (r, res) in runs.iter().zip(&results) {
        assert_eq!(
            r.get("algorithm").and_then(jsonv::Value::as_str),
            Some(res.algorithm.name())
        );
        assert_eq!(
            r.get("checksum").and_then(jsonv::Value::as_str),
            Some(format!("{:#018x}", res.checksum).as_str())
        );
        assert_eq!(
            r.get("matches").and_then(jsonv::Value::as_num),
            Some(res.matches as f64)
        );
        let phases = r.get("phases").and_then(jsonv::Value::as_arr).unwrap();
        assert_eq!(phases.len(), res.phases.len());
        for p in phases {
            let workers = p.get("workers").and_then(jsonv::Value::as_arr).unwrap();
            assert!(!workers.is_empty());
            for w in workers {
                assert!(w.get("cycles").unwrap().is_num_or_null());
                assert!(w.get("task_clock_ns").unwrap().is_num_or_null());
            }
        }
    }
    assert!(metrics
        .get("meta")
        .and_then(|m| m.get("perf_counters"))
        .and_then(jsonv::Value::as_bool)
        .is_some());
}
