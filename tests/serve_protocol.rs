//! Integration suite for the `mmjoin-serve` protocol (ISSUE 9 /
//! DESIGN.md §15): multi-tenant admission behavior, deadline expiry,
//! framing robustness, and build-side cache consistency — all through
//! the public TCP surface, exactly as an external client would see it.

use std::time::Duration;

use mmjoin::serve::{Client, ServeConfig, Server};
use mmjoin::util::jsonv::Value;

fn client(server: &Server) -> Client {
    let mut c = Client::connect(server.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(120))).unwrap();
    c
}

fn ok(v: &Value) -> bool {
    v.get("ok").and_then(|b| b.as_bool()) == Some(true)
}

fn err_code(v: &Value) -> &str {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(|c| c.as_str())
        .unwrap_or("<no error code>")
}

fn checksum(v: &Value) -> &str {
    v.get("checksum").and_then(|c| c.as_str()).unwrap_or("")
}

/// Structural validation of a parsed `stat` body: every section the
/// server promises, with the right JSON types. The payload already
/// round-tripped through `jsonv::parse` to get here (the client parses
/// every response frame), so passing this means the whole rendered
/// document is well-formed JSON of the documented shape.
fn validate_stat(stat: &Value) {
    let n = |v: &Value, k: &str| {
        v.get(k)
            .and_then(|x| x.as_num())
            .unwrap_or_else(|| panic!("stat missing number {k:?}: {v:?}"))
    };
    n(stat, "uptime_ms");
    n(stat, "frames");
    n(stat, "bad_frames");
    n(stat, "bytes_out");
    let conns = stat.get("connections").expect("connections");
    n(conns, "accepted");
    n(conns, "open");
    let joins = stat.get("joins").expect("joins");
    n(joins, "ok");
    n(joins, "err");
    n(joins, "degraded");
    let cache = stat.get("cache").expect("cache");
    for k in [
        "entries",
        "bytes",
        "capacity",
        "hits",
        "misses",
        "evictions",
    ] {
        n(cache, k);
    }
    let gb = stat.get("global_budget").expect("global_budget");
    n(gb, "used");
    n(gb, "limit");
    for t in stat
        .get("tenants")
        .and_then(|t| t.as_arr())
        .expect("tenants")
    {
        assert!(t.get("name").and_then(|s| s.as_str()).is_some());
        for k in [
            "queued",
            "admitted",
            "rejected",
            "completed",
            "errored",
            "degraded",
        ] {
            n(t, k);
        }
    }
    for e in stat
        .get("catalog")
        .and_then(|c| c.as_arr())
        .expect("catalog")
    {
        assert!(e.get("name").and_then(|s| s.as_str()).is_some());
        n(e, "rows");
        n(e, "bytes");
        n(e, "version");
    }
    // The telemetry section (DESIGN.md §16).
    let tel = stat.get("telemetry").expect("telemetry");
    n(tel, "window_secs");
    let flight = tel.get("flight").expect("flight");
    n(flight, "len");
    n(flight, "capacity");
    n(flight, "dropped");
    for t in tel
        .get("tenants")
        .and_then(|t| t.as_arr())
        .expect("slo tenants")
    {
        assert!(t.get("name").and_then(|s| s.as_str()).is_some());
        n(t, "requests");
        n(t, "error_rate");
        n(t, "degraded_rate");
        for view in ["rolling", "total"] {
            let r = t.get(view).unwrap_or_else(|| panic!("missing {view}"));
            n(r, "count");
            n(r, "p50_ms");
            n(r, "p99_ms");
            n(r, "p999_ms");
        }
    }
    let overall = tel.get("overall").expect("overall");
    n(overall, "count");
    n(overall, "p99_ms");
    let watch = tel.get("watch").expect("watch");
    let status = watch
        .get("status")
        .and_then(|s| s.as_str())
        .expect("status");
    assert!(status == "clean" || status == "regressed");
    n(watch, "rotations");
    n(watch, "flags_total");
    assert!(watch.get("flags").and_then(|f| f.as_arr()).is_some());
}

fn load_pair(c: &mut Client, build_rows: usize, probe_rows: usize) {
    let v = c
        .request(&format!(
            r#"{{"op":"load","name":"r","rows":{build_rows},"kind":"build","seed":42}}"#
        ))
        .unwrap();
    assert!(ok(&v), "load r failed: {v:?}");
    let v = c
        .request(&format!(
            r#"{{"op":"load","name":"s","rows":{probe_rows},"kind":"probe_fk","domain":{build_rows},"seed":43}}"#
        ))
        .unwrap();
    assert!(ok(&v), "load s failed: {v:?}");
}

#[test]
fn load_join_stat_round_trip() {
    let server = Server::spawn(ServeConfig::default().with_runners(2)).unwrap();
    let mut c = client(&server);

    load_pair(&mut c, 50_000, 200_000);
    let v = c
        .request(r#"{"op":"join","id":1,"algo":"PRO","build":"r","probe":"s"}"#)
        .unwrap();
    assert!(ok(&v), "join failed: {v:?}");
    assert_eq!(v.get("id").and_then(|i| i.as_num()), Some(1.0));
    assert_eq!(v.get("matches").and_then(|m| m.as_num()), Some(200_000.0));
    assert!(!checksum(&v).is_empty());

    let v = c.request(r#"{"op":"stat"}"#).unwrap();
    assert!(ok(&v));
    let stat = v.get("stat").expect("stat body");
    validate_stat(stat);
    // The embedder-facing export is the same document.
    let direct = mmjoin::util::jsonv::parse(&server.stat_json()).expect("stat_json parses");
    validate_stat(&direct);
    let catalog = stat.get("catalog").and_then(|c| c.as_arr()).unwrap();
    assert_eq!(catalog.len(), 2);
    let joins_ok = stat
        .get("joins")
        .and_then(|j| j.get("ok"))
        .and_then(|n| n.as_num())
        .unwrap();
    assert!(joins_ok >= 1.0);

    // Unknown relations and algorithms come back typed, not as hangups.
    let v = c
        .request(r#"{"op":"join","algo":"PRO","build":"nope","probe":"s"}"#)
        .unwrap();
    assert_eq!(err_code(&v), "unknown_relation");
    let v = c
        .request(r#"{"op":"join","algo":"zzz","build":"r","probe":"s"}"#)
        .unwrap();
    assert_eq!(err_code(&v), "unknown_algorithm");

    server.shutdown();
}

/// Two tenants, conflicting budgets: the starved one degrades to the
/// spilling join (never an error), the funded one runs resident, and
/// both compute the same result.
#[test]
fn conflicting_tenant_budgets_one_spills_one_resident() {
    let server = Server::spawn(
        ServeConfig::default()
            .with_runners(2)
            .with_tenant_budget("small", 6 << 20)
            .with_tenant_budget("big", 512 << 20),
    )
    .unwrap();
    let mut c = client(&server);
    // Working-set estimate for PRO over (200k, 1M) tuples is ~21 MB:
    // far above "small"'s 6 MiB carve, far below "big"'s 512 MiB.
    load_pair(&mut c, 200_000, 1_000_000);

    let small = c
        .request(r#"{"op":"join","id":10,"tenant":"small","algo":"PRO","build":"r","probe":"s"}"#)
        .unwrap();
    let big = c
        .request(r#"{"op":"join","id":11,"tenant":"big","algo":"PRO","build":"r","probe":"s"}"#)
        .unwrap();

    assert!(
        ok(&small),
        "starved tenant must degrade, not fail: {small:?}"
    );
    assert_eq!(small.get("degraded").and_then(|d| d.as_bool()), Some(true));
    assert_eq!(small.get("algo").and_then(|a| a.as_str()), Some("SHHJ"));

    assert!(ok(&big), "funded tenant failed: {big:?}");
    assert_eq!(big.get("degraded").and_then(|d| d.as_bool()), Some(false));
    assert_eq!(big.get("algo").and_then(|a| a.as_str()), Some("PRO"));

    assert_eq!(small.get("matches").and_then(|m| m.as_num()), Some(1e6));
    assert_eq!(big.get("matches").and_then(|m| m.as_num()), Some(1e6));
    assert_eq!(checksum(&small), checksum(&big), "degraded result diverged");

    // stat records the degradation against the right tenant.
    let v = c.request(r#"{"op":"stat"}"#).unwrap();
    validate_stat(v.get("stat").expect("stat body"));
    let tenants = v
        .get("stat")
        .and_then(|s| s.get("tenants"))
        .and_then(|t| t.as_arr())
        .unwrap();
    let find = |name: &str| {
        tenants
            .iter()
            .find(|t| t.get("name").and_then(|n| n.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("tenant {name} missing from stat"))
    };
    assert_eq!(
        find("small").get("degraded").and_then(|d| d.as_num()),
        Some(1.0)
    );
    assert_eq!(
        find("big").get("degraded").and_then(|d| d.as_num()),
        Some(0.0)
    );

    server.shutdown();
}

/// A deadline that expires while the join is running comes back as the
/// typed `timedout` error — and the connection keeps working.
#[test]
fn deadline_expiry_is_typed_and_connection_survives() {
    let server = Server::spawn(ServeConfig::default().with_runners(2)).unwrap();
    let mut c = client(&server);
    load_pair(&mut c, 1_000_000, 4_000_000);

    let v = c
        .request(
            r#"{"op":"join","id":20,"algo":"PRO","build":"r","probe":"s","deadline_ms":5,"cache":false}"#,
        )
        .unwrap();
    assert!(!ok(&v), "a 5 ms deadline cannot fit this join: {v:?}");
    assert_eq!(err_code(&v), "timedout");
    assert_eq!(v.get("id").and_then(|i| i.as_num()), Some(20.0));

    // Same socket, next request: alive and correct.
    let v = c.request(r#"{"op":"stat"}"#).unwrap();
    assert!(ok(&v));
    validate_stat(v.get("stat").expect("stat body"));
    let v = c
        .request(r#"{"op":"join","id":21,"algo":"NOP","build":"r","probe":"s"}"#)
        .unwrap();
    assert!(ok(&v), "join after timeout failed: {v:?}");
    assert_eq!(v.get("matches").and_then(|m| m.as_num()), Some(4e6));

    server.shutdown();
}

/// Garbage payloads inside well-formed frames produce protocol errors;
/// the server neither panics nor drops the connection.
#[test]
fn malformed_frames_get_protocol_errors_not_panics() {
    let server = Server::spawn(ServeConfig::default().with_runners(1)).unwrap();
    let mut c = client(&server);

    // Not JSON at all.
    let v = c.request(r#"{"op": <-- nope"#).unwrap();
    assert_eq!(err_code(&v), "bad_frame");
    // Valid JSON, wrong shape.
    let v = c.request(r#"[1,2,3]"#).unwrap();
    assert_eq!(err_code(&v), "bad_request");
    // Valid object, unknown op.
    let v = c.request(r#"{"op":"warp"}"#).unwrap();
    assert_eq!(err_code(&v), "bad_request");
    // Not UTF-8.
    let mut frame = 4u32.to_be_bytes().to_vec();
    frame.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc]);
    c.send_raw(&frame).unwrap();
    let v = c.recv().unwrap();
    assert_eq!(err_code(&v), "bad_frame");

    // The same connection still serves real requests afterwards.
    let v = c.request(r#"{"op":"stat"}"#).unwrap();
    assert!(ok(&v), "connection should survive garbage: {v:?}");
    validate_stat(v.get("stat").expect("stat body"));

    // An oversized frame advertisement is answered (and the declared
    // bytes are discarded to keep the stream framed); a fresh
    // connection confirms the server itself is unharmed.
    c.send_raw(&(u32::MAX).to_be_bytes()).unwrap();
    let v = c.recv().unwrap();
    assert_eq!(err_code(&v), "bad_frame");
    drop(c);
    let mut c2 = client(&server);
    let v = c2.request(r#"{"op":"stat"}"#).unwrap();
    assert!(ok(&v));

    server.shutdown();
}

/// A cache hit must return byte-identical results to the cold run that
/// populated it — and to the classic (uncached) driver.
#[test]
fn cached_build_side_matches_cold_run_checksums() {
    let server = Server::spawn(ServeConfig::default().with_runners(2)).unwrap();
    let mut c = client(&server);
    load_pair(&mut c, 100_000, 400_000);

    let v = c.request(r#"{"op":"flush"}"#).unwrap();
    assert!(ok(&v));

    let cold = c
        .request(r#"{"op":"join","algo":"PRL","build":"r","probe":"s"}"#)
        .unwrap();
    assert!(ok(&cold), "cold join failed: {cold:?}");
    assert_eq!(cold.get("cached").and_then(|b| b.as_bool()), Some(false));

    let hot = c
        .request(r#"{"op":"join","algo":"PRL","build":"r","probe":"s"}"#)
        .unwrap();
    assert!(ok(&hot), "hot join failed: {hot:?}");
    assert_eq!(hot.get("cached").and_then(|b| b.as_bool()), Some(true));

    let classic = c
        .request(r#"{"op":"join","algo":"PRL","build":"r","probe":"s","cache":false}"#)
        .unwrap();
    assert!(ok(&classic));
    assert_eq!(classic.get("cached").and_then(|b| b.as_bool()), Some(false));

    assert_eq!(checksum(&cold), checksum(&hot));
    assert_eq!(checksum(&cold), checksum(&classic));
    assert_eq!(
        cold.get("matches").and_then(|m| m.as_num()),
        hot.get("matches").and_then(|m| m.as_num())
    );

    // Reloading the relation bumps its version: the stale cached side
    // must not serve the new data.
    let v = c
        .request(r#"{"op":"load","name":"r","rows":100000,"kind":"build","seed":99}"#)
        .unwrap();
    assert!(ok(&v));
    let reloaded = c
        .request(r#"{"op":"join","algo":"PRL","build":"r","probe":"s"}"#)
        .unwrap();
    assert!(ok(&reloaded));
    assert_eq!(
        reloaded.get("cached").and_then(|b| b.as_bool()),
        Some(false)
    );

    let v = c.request(r#"{"op":"stat"}"#).unwrap();
    validate_stat(v.get("stat").expect("stat body"));
    let cache = v.get("stat").and_then(|s| s.get("cache")).unwrap();
    assert!(cache.get("hits").and_then(|h| h.as_num()).unwrap() >= 1.0);
    assert!(cache.get("misses").and_then(|m| m.as_num()).unwrap() >= 2.0);

    server.shutdown();
}

/// Queue overflow rejects synchronously with a typed error instead of
/// buffering unbounded work.
#[test]
fn queue_overflow_is_a_typed_rejection() {
    let server = Server::spawn(ServeConfig::default().with_runners(1).with_queue_depth(1)).unwrap();
    let mut c = client(&server);
    load_pair(&mut c, 500_000, 2_000_000);

    // Fire-and-forget several joins; with one runner and depth 1, some
    // must be rejected with queue_full while the rest complete.
    for i in 0..6 {
        c.send(&format!(
            r#"{{"op":"join","id":{i},"algo":"PRO","build":"r","probe":"s"}}"#
        ))
        .unwrap();
    }
    let mut ok_count = 0;
    let mut rejected = 0;
    for _ in 0..6 {
        let v = c.recv().unwrap();
        if ok(&v) {
            ok_count += 1;
        } else {
            assert_eq!(err_code(&v), "queue_full");
            rejected += 1;
        }
    }
    assert!(ok_count >= 1, "at least one join must be admitted");
    assert!(rejected >= 1, "depth-1 queue must reject a burst of 6");

    server.shutdown();
}
