//! Smoke-test the entire experiment harness: every registered
//! table/figure reproduction must run to completion (at a tiny scale)
//! and produce non-empty tables.

use mmjoin_bench::experiments::registry;
use mmjoin_bench::HarnessOpts;

fn tiny_opts() -> HarnessOpts {
    HarnessOpts {
        scale: 65536, // tiny: 128M paper tuples -> ~2k tuples
        threads: 2,
        sim_threads: 8,
        json: false,
    }
}

#[test]
fn every_experiment_runs_and_produces_rows() {
    let opts = tiny_opts();
    for (name, _, f) in registry() {
        let tables = f(&opts);
        assert!(!tables.is_empty(), "{name} produced no tables");
        for t in &tables {
            assert!(!t.rows.is_empty(), "{name}: table '{}' is empty", t.title);
            for row in &t.rows {
                assert_eq!(
                    row.len(),
                    t.headers.len(),
                    "{name}: ragged row in '{}'",
                    t.title
                );
            }
            // Rendering must not panic and must contain the title.
            let rendered = t.render();
            assert!(rendered.contains(&t.title));
        }
    }
}

#[test]
fn experiment_registry_covers_all_paper_artifacts() {
    let names: Vec<&str> = registry().iter().map(|(n, _, _)| *n).collect();
    for required in [
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "tab3", "tab4", "pipeline",
    ] {
        assert!(names.contains(&required), "missing experiment {required}");
    }
}

#[test]
fn json_serialization_works() {
    let opts = tiny_opts();
    let (_, _, f) = registry()
        .into_iter()
        .find(|(n, _, _)| *n == "fig1")
        .unwrap();
    let tables = f(&opts);
    let json = mmjoin_bench::harness::tables_to_json(&tables);
    assert!(json.contains("Figure 1"));
}
