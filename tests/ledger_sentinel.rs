//! The run ledger and the regression sentinel, end to end without
//! benchmarks: entry JSON round-trips through the vendored validator,
//! identical entries compare clean, a synthetic 2x slowdown is flagged
//! on exactly the perturbed cells, and cross-host comparisons are
//! refused unless forced.

use mmjoin_bench::jsonv;
use mmjoin_bench::ledger::{self, Entry, Host, SampleSet};
use mmjoin_bench::sentinel::{self, CellStatus, CompareOpts};

/// A hand-built entry with fixed provenance: tests must not depend on
/// the git state or host the suite happens to run on.
fn entry(timestamp: u64, samples: Vec<SampleSet>) -> Entry {
    Entry {
        schema: ledger::SCHEMA_VERSION,
        kind: "test".to_string(),
        label: String::new(),
        timestamp,
        git_sha: "feedbeef".to_string(),
        git_dirty: false,
        host: Host {
            cpu_model: "Test CPU \u{1f680} v2".to_string(),
            threads_avail: 8,
            arch: "x86_64".to_string(),
            fingerprint: ledger::fingerprint_of("Test CPU \u{1f680} v2", 8, "x86_64"),
        },
        threads: 4,
        kernel_mode: "portable".to_string(),
        alloc_policy: "portable".to_string(),
        retried_trials: 1,
        failed_trials: 0,
        failed_resource_trials: 0,
        failed_io_trials: 0,
        samples,
    }
}

fn cell(algorithm: &str, secs: &[f64]) -> SampleSet {
    SampleSet {
        algorithm: algorithm.to_string(),
        workload: "quick".to_string(),
        kernel_mode: "portable".to_string(),
        secs: secs.to_vec(),
    }
}

#[test]
fn entry_json_round_trips_through_jsonv() {
    let e = entry(
        1_750_000_000,
        vec![cell("PRO", &[0.011, 0.0105, 0.0112]), cell("NOP", &[0.02])],
    );
    let line = e.to_json();
    let v = jsonv::parse(&line).expect("entry JSON parses");
    let back = Entry::from_value(&v).expect("entry JSON deserializes");
    assert_eq!(back, e, "to_json -> parse -> from_value is identity");
}

#[test]
fn identical_entries_report_zero_regressions() {
    let secs = [0.0100, 0.0103, 0.0101];
    let base = entry(1_000, vec![cell("PRO", &secs), cell("CPRL", &secs)]);
    let mut cand = entry(2_000, vec![cell("PRO", &secs), cell("CPRL", &secs)]);
    cand.git_sha = "cafef00d".to_string();
    let verdict =
        sentinel::compare_entries(&base, &cand, &CompareOpts::default()).expect("same host");
    assert!(
        verdict.regressions().is_empty(),
        "identical samples must not regress: {:?}",
        verdict.cells
    );
    assert!(verdict
        .cells
        .iter()
        .all(|c| c.status == CellStatus::Ok && c.delta.abs() < 1e-9));

    // The machine verdict must satisfy its own documented schema.
    let v = jsonv::parse(&verdict.to_json()).expect("verdict JSON parses");
    let problems = sentinel::validate_verdict(&v);
    assert!(
        problems.is_empty(),
        "verdict schema violations: {problems:?}"
    );
}

#[test]
fn synthetic_2x_slowdown_flags_exactly_the_perturbed_cells() {
    // Repeats with realistic jitter; CPRL is slowed 2x in the candidate.
    let pro = [0.0100, 0.0102, 0.0099, 0.0101];
    let cprl = [0.0070, 0.0072, 0.0069, 0.0071];
    let base = entry(1_000, vec![cell("PRO", &pro), cell("CPRL", &cprl)]);
    let slowed: Vec<f64> = cprl.iter().map(|s| s * 2.0).collect();
    let cand = entry(2_000, vec![cell("PRO", &pro), cell("CPRL", &slowed)]);
    let verdict =
        sentinel::compare_entries(&base, &cand, &CompareOpts::default()).expect("same host");

    let regressed: Vec<String> = verdict.regressions().iter().map(|c| c.key()).collect();
    assert_eq!(
        regressed,
        vec!["CPRL/quick/portable".to_string()],
        "exactly the perturbed cell is confirmed"
    );
    let cprl_cell = verdict
        .cells
        .iter()
        .find(|c| c.algorithm == "CPRL")
        .unwrap();
    assert!(
        (cprl_cell.delta - 1.0).abs() < 1e-9,
        "2x slowdown is a +100% delta, got {}",
        cprl_cell.delta
    );
    let pro_cell = verdict.cells.iter().find(|c| c.algorithm == "PRO").unwrap();
    assert_eq!(pro_cell.status, CellStatus::Ok, "untouched cell stays ok");

    // The regression survives into the machine verdict.
    let v = jsonv::parse(&verdict.to_json()).expect("verdict JSON parses");
    assert!(sentinel::validate_verdict(&v).is_empty());
    let regs = v
        .get("regressions")
        .and_then(|r| r.as_arr())
        .expect("regressions array");
    assert_eq!(regs.len(), 1);
    assert_eq!(
        regs[0].get("algorithm").and_then(|a| a.as_str()),
        Some("CPRL")
    );
}

#[test]
fn small_slowdown_without_significance_is_suspect_not_regressed() {
    // 10% median slowdown, but single samples: no Mann-Whitney p, no
    // bootstrap separation -> report, don't fail.
    let base = entry(1_000, vec![cell("PRO", &[0.0100])]);
    let cand = entry(2_000, vec![cell("PRO", &[0.0110])]);
    let verdict =
        sentinel::compare_entries(&base, &cand, &CompareOpts::default()).expect("same host");
    assert!(verdict.regressions().is_empty());
    assert_eq!(verdict.cells[0].status, CellStatus::Suspect);
    assert_eq!(verdict.cells[0].p_value, None);
}

#[test]
fn cross_host_comparison_is_refused_unless_forced() {
    let secs = [0.0100, 0.0101, 0.0102];
    let base = entry(1_000, vec![cell("PRO", &secs)]);
    let mut cand = entry(2_000, vec![cell("PRO", &secs)]);
    cand.host.cpu_model = "Other CPU".to_string();
    cand.host.fingerprint = ledger::fingerprint_of("Other CPU", 8, "x86_64");

    let err = sentinel::compare_entries(&base, &cand, &CompareOpts::default())
        .expect_err("cross-host must refuse by default");
    assert!(
        err.contains("--allow-cross-host"),
        "refusal names the escape hatch: {err}"
    );

    let forced = CompareOpts {
        allow_cross_host: true,
        ..CompareOpts::default()
    };
    let verdict = sentinel::compare_entries(&base, &cand, &forced).expect("forced comparison");
    assert!(verdict.cross_host, "verdict records the forced comparison");
    assert!(verdict.regressions().is_empty());
}

#[test]
fn ledger_append_and_read_all_round_trip_on_disk() {
    let dir = std::env::temp_dir().join(format!(
        "mmjoin-ledger-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let path = dir.join("nested").join("ledger.jsonl");
    let a = entry(1_000, vec![cell("PRO", &[0.01, 0.011])]);
    let b = entry(2_000, vec![cell("NOP", &[0.02])]);
    ledger::append(&path, &a).expect("append creates parent dirs");
    ledger::append(&path, &b).expect("append is additive");
    let read = ledger::read_all(&path).expect("ledger reads back");
    assert_eq!(read, vec![a, b]);
    std::fs::remove_dir_all(&dir).ok();
}
