//! The thirteen algorithms through the typed `Join` builder: edge-case
//! matrix (empty build, empty probe, single tuples), builder-vs-config
//! equivalence, and the no-respawn guarantee of the persistent executor.
//!
//! The spawn-counter assertions live here and nowhere else in this test
//! binary: `Executor::total_threads_spawned()` is process-global, so the
//! whole file pins every join to one thread count.

use mmjoin::core::{Algorithm, Executor, Join, JoinConfig, JoinResult};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk};
use mmjoin::util::{Placement, Relation, Tuple};

const THREADS: usize = 3;

fn run(alg: Algorithm, r: &Relation, s: &Relation) -> JoinResult {
    Join::new(alg)
        .with_threads(THREADS)
        .with_radix_bits(4)
        .with_simulate(false)
        .run(r, s)
        .expect("valid plan")
}

#[test]
fn edge_case_matrix_all_thirteen() {
    let empty = Relation::from_tuples(&[], Placement::Interleaved);
    let hundred = gen_build_dense(100, 81, Placement::Interleaved);
    let one_r = Relation::from_tuples(&[Tuple::new(1, 7)], Placement::Interleaved);
    let one_hit = Relation::from_tuples(&[Tuple::new(1, 9)], Placement::Interleaved);
    let one_miss = Relation::from_tuples(&[Tuple::new(77, 9)], Placement::Interleaved);
    for alg in Algorithm::ALL {
        assert_eq!(run(alg, &empty, &hundred).matches, 0, "{alg}: empty build");
        assert_eq!(run(alg, &hundred, &empty).matches, 0, "{alg}: empty probe");
        assert_eq!(run(alg, &empty, &empty).matches, 0, "{alg}: both empty");
        assert_eq!(run(alg, &one_r, &one_hit).matches, 1, "{alg}: single hit");
        let miss = Join::new(alg)
            .with_threads(THREADS)
            .with_radix_bits(4)
            .with_simulate(false)
            .with_key_domain(128) // cover key 77 for the array variants
            .run(&one_r, &one_miss)
            .expect("valid plan");
        assert_eq!(miss.matches, 0, "{alg}: single miss");
    }
}

/// Per-setter builder calls and a shared pre-built `JoinConfig` describe
/// the same plan: both paths produce identical matches and checksums.
/// (This replaces the old equivalence test against the deleted
/// `run_join` shim.)
#[test]
fn builder_and_config_agree_on_all_thirteen() {
    let r = gen_build_dense(3_000, 83, Placement::Chunked { parts: 4 });
    let s = gen_probe_fk(12_000, 3_000, 84, Placement::Chunked { parts: 4 });
    let mut cfg = JoinConfig::new(THREADS);
    cfg.simulate = false;
    for alg in Algorithm::ALL {
        let via_config = Join::new(alg)
            .with_config(cfg.clone())
            .run(&r, &s)
            .expect("valid plan");
        let via_setters = Join::new(alg)
            .with_threads(THREADS)
            .with_simulate(false)
            .run(&r, &s)
            .expect("valid plan");
        assert_eq!(via_config.matches, via_setters.matches, "{alg}");
        assert_eq!(via_config.checksum, via_setters.checksum, "{alg}");
    }
}

/// The tentpole guarantee: racing all thirteen algorithms creates at
/// most `THREADS` worker threads in the whole process, and re-racing
/// them spawns zero more — no join phase spawns threads once the pool
/// exists.
#[test]
fn thirteen_race_spawns_at_most_threads_workers() {
    let r = gen_build_dense(4_000, 85, Placement::Chunked { parts: 4 });
    let s = gen_probe_fk(16_000, 4_000, 86, Placement::Chunked { parts: 4 });
    let race = || {
        let mut counts = Vec::new();
        for alg in Algorithm::ALL {
            let res = run(alg, &r, &s);
            assert!(
                res.phases.iter().all(|p| p.exec.tasks > 0),
                "{alg}: every phase reports executor work: {:?}",
                res.phases
            );
            assert!(res.total_exec().tasks > 0, "{alg}");
            counts.push((res.matches, res.checksum));
        }
        counts
    };
    let first = race();
    assert!(first.iter().all(|&(m, c)| (m, c) == first[0]), "{first:?}");
    // NOTE: the edge-case and equivalence tests above may run
    // concurrently, but every join in this binary uses THREADS workers,
    // so exactly one pool can ever exist in this process.
    let spawned = Executor::total_threads_spawned();
    assert_eq!(spawned, THREADS, "one pool for the whole race");
    let second = race();
    assert_eq!(first, second);
    assert_eq!(
        Executor::total_threads_spawned(),
        spawned,
        "warm re-race spawned no threads"
    );
}
