//! Failure-injection & adversarial-input tests: pathological workloads
//! that stress the paper-relevant failure modes — extreme skew (one
//! partition owns everything), boundary keys, degenerate fanouts,
//! duplicate floods, and queue starvation shapes.

use mmjoin::core::reference::reference_join;
use mmjoin::core::{Algorithm, Join, JoinConfig, JoinError, JoinResult};
use mmjoin::partition::{chunked_partition, partition_parallel, RadixFn, ScatterMode};
use mmjoin::util::{Placement, Relation, Tuple};

fn cfg(threads: usize, bits: Option<u32>) -> JoinConfig {
    let mut c = JoinConfig::new(threads);
    c.simulate = false;
    c.radix_bits = bits;
    // These tests feed duplicate build keys; disable the PK assumption.
    c.unique_build_keys = false;
    c
}

fn run_join(alg: Algorithm, r: &Relation, s: &Relation, c: &JoinConfig) -> JoinResult {
    Join::new(alg)
        .with_config(c.clone())
        .run(r, s)
        .expect("valid plan")
}

/// Algorithms that tolerate arbitrary key multisets (array joins need
/// unique keys by contract).
const MULTISET_ALGOS: [Algorithm; 9] = [
    Algorithm::Nop,
    Algorithm::Chtj,
    Algorithm::Mway,
    Algorithm::Prb,
    Algorithm::Pro,
    Algorithm::Prl,
    Algorithm::ProIs,
    Algorithm::PrlIs,
    Algorithm::Cprl,
];

#[test]
fn all_probe_tuples_hit_one_partition() {
    // Every probe key identical: one co-partition task carries the whole
    // probe side — the task-queue starvation shape of Appendix A.
    let n = 2_000;
    let r = mmjoin::datagen::gen_build_dense(n, 1, Placement::Chunked { parts: 4 });
    let hot: Vec<Tuple> = (0..20_000).map(|i| Tuple::new(777, i)).collect();
    let s = Relation::from_tuples(&hot, Placement::Chunked { parts: 4 });
    let expect = reference_join(&r, &s);
    assert_eq!(expect.count, 20_000);
    for alg in MULTISET_ALGOS {
        let res = run_join(alg, &r, &s, &cfg(4, Some(6)));
        assert_eq!(res.matches, expect.count, "{}", alg.name());
        assert_eq!(res.checksum, expect.digest, "{}", alg.name());
    }
}

#[test]
fn duplicate_flood_on_build_side() {
    // 50 copies of each build key: every probe fans out 50×.
    let mut build = Vec::new();
    for key in 1..=40u32 {
        for copy in 0..50u32 {
            build.push(Tuple::new(key, key * 100 + copy));
        }
    }
    let r = Relation::from_tuples(&build, Placement::Interleaved);
    let probes: Vec<Tuple> = (1..=40u32).map(|k| Tuple::new(k, k)).collect();
    let s = Relation::from_tuples(&probes, Placement::Interleaved);
    let expect = reference_join(&r, &s);
    assert_eq!(expect.count, 40 * 50);
    for alg in MULTISET_ALGOS {
        let res = run_join(alg, &r, &s, &cfg(3, Some(3)));
        assert_eq!(res.matches, expect.count, "{}", alg.name());
        assert_eq!(res.checksum, expect.digest, "{}", alg.name());
    }
}

#[test]
fn boundary_keys() {
    // Keys at the top of the u32 domain (key 0 is the reserved EMPTY
    // sentinel and is excluded by the generators' contract).
    let tuples = [
        Tuple::new(u32::MAX, 1),
        Tuple::new(u32::MAX - 1, 2),
        Tuple::new(1, 3),
        Tuple::new(2, 4),
    ];
    let r = Relation::from_tuples(&tuples, Placement::Interleaved);
    let s = Relation::from_tuples(&tuples, Placement::Interleaved);
    let expect = reference_join(&r, &s);
    for alg in MULTISET_ALGOS {
        // Skip NOPA-style domains; hash/sort algorithms must cope.
        let res = run_join(alg, &r, &s, &cfg(2, Some(2)));
        assert_eq!(res.matches, expect.count, "{}", alg.name());
        assert_eq!(res.checksum, expect.digest, "{}", alg.name());
    }
}

#[test]
fn zero_bit_partitioning_degenerates_gracefully() {
    // fanout 2^1 = 2 with everything in one partition.
    let tuples: Vec<Tuple> = (0..500).map(|i| Tuple::new(2 * i + 2, i)).collect(); // all even
    let pr = partition_parallel(&tuples, RadixFn::new(1), 4, ScatterMode::Swwcb);
    assert_eq!(pr.part_len(0), 500);
    assert_eq!(pr.part_len(1), 0);
    let cp = chunked_partition(&tuples, RadixFn::new(1), 4, ScatterMode::Swwcb);
    assert_eq!(cp.part_len(0), 500);
    assert_eq!(cp.part_len(1), 0);
}

#[test]
fn fanout_larger_than_input() {
    // 2^12 partitions for 100 tuples: almost all partitions empty.
    let tuples: Vec<Tuple> = (1..=100).map(|k| Tuple::new(k, k)).collect();
    let pr = partition_parallel(&tuples, RadixFn::new(12), 4, ScatterMode::Swwcb);
    let total: usize = (0..pr.parts()).map(|p| pr.part_len(p)).sum();
    assert_eq!(total, 100);
    // And a join over that fanout still works.
    let r = Relation::from_tuples(&tuples, Placement::Interleaved);
    let s = Relation::from_tuples(&tuples, Placement::Interleaved);
    let res = run_join(Algorithm::Cprl, &r, &s, &cfg(4, Some(12)));
    assert_eq!(res.matches, 100);
}

#[test]
fn asymmetric_extremes() {
    // |R| = 1 vs large |S|, and the reverse.
    let one = Relation::from_tuples(&[Tuple::new(5, 0)], Placement::Interleaved);
    let many: Vec<Tuple> = (0..5_000).map(|i| Tuple::new(5, i)).collect();
    let many = Relation::from_tuples(&many, Placement::Interleaved);
    for alg in MULTISET_ALGOS {
        let res = run_join(alg, &one, &many, &cfg(4, Some(4)));
        assert_eq!(res.matches, 5_000, "{} 1xN", alg.name());
        let res = run_join(alg, &many, &one, &cfg(4, Some(4)));
        assert_eq!(res.matches, 5_000, "{} Nx1", alg.name());
    }
}

#[test]
fn runtime_limits_honored_by_all_thirteen() {
    // Every driver must observe the three runtime limits of JoinConfig:
    // an already-expired deadline, a pre-cancelled token, and a 1-byte
    // memory budget. None of these needs the `failpoints` feature.
    let r = mmjoin::datagen::gen_build_dense(3_000, 21, Placement::Chunked { parts: 4 });
    let s = mmjoin::datagen::gen_probe_fk(12_000, 3_000, 22, Placement::Chunked { parts: 4 });
    for alg in Algorithm::ALL {
        let name = alg.name();

        let mut c = cfg(4, Some(5));
        c.unique_build_keys = true;
        c.deadline = Some(std::time::Duration::ZERO);
        match Join::new(alg).with_config(c).run(&r, &s) {
            Err(JoinError::Timedout { .. }) => {}
            other => panic!("{name}: expected Timedout with zero deadline, got {other:?}"),
        }

        let mut c = cfg(4, Some(5));
        c.unique_build_keys = true;
        c.cancel.cancel();
        match Join::new(alg).with_config(c).run(&r, &s) {
            Err(JoinError::Cancelled { .. }) => {}
            other => panic!("{name}: expected Cancelled with tripped token, got {other:?}"),
        }

        let mut c = cfg(4, Some(5));
        c.unique_build_keys = true;
        c.mem_limit = Some(1);
        match Join::new(alg).with_config(c).run(&r, &s) {
            Err(JoinError::MemoryBudgetExceeded {
                requested, limit, ..
            }) => {
                assert_eq!(limit, 1, "{name}");
                assert!(requested > 1, "{name}");
            }
            other => panic!("{name}: expected MemoryBudgetExceeded at 1 byte, got {other:?}"),
        }
    }
}

#[test]
fn cancellation_mid_join_from_another_thread() {
    // A clone of the token cancelled from outside stops the join; the
    // same pool then runs an unrestricted join correctly.
    let r = mmjoin::datagen::gen_build_dense(3_000, 23, Placement::Chunked { parts: 4 });
    let s = mmjoin::datagen::gen_probe_fk(12_000, 3_000, 24, Placement::Chunked { parts: 4 });
    let c = cfg(4, Some(5));
    let token = c.cancel.clone();
    token.cancel();
    match Join::new(Algorithm::Pro).with_config(c).run(&r, &s) {
        Err(JoinError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled via cloned token, got {other:?}"),
    }
    let expect = reference_join(&r, &s);
    let res = run_join(Algorithm::Pro, &r, &s, &cfg(4, Some(5)));
    assert_eq!(res.matches, expect.count);
    assert_eq!(res.checksum, expect.digest);
}

#[test]
fn simulation_plane_never_changes_results() {
    // The cost model must be observational: toggling it cannot change
    // the join output.
    let r = mmjoin::datagen::gen_build_dense(3_000, 9, Placement::Chunked { parts: 4 });
    let s = mmjoin::datagen::gen_probe_fk(12_000, 3_000, 10, Placement::Chunked { parts: 4 });
    for alg in Algorithm::ALL {
        let mut on = JoinConfig::new(4);
        on.simulate = true;
        let mut off = JoinConfig::new(4);
        off.simulate = false;
        let a = run_join(alg, &r, &s, &on);
        let b = run_join(alg, &r, &s, &off);
        assert_eq!(a.matches, b.matches, "{}", alg.name());
        assert_eq!(a.checksum, b.checksum, "{}", alg.name());
        assert!(a.total_sim() > 0.0, "{}", alg.name());
        assert_eq!(b.total_sim(), 0.0, "{}", alg.name());
    }
}
