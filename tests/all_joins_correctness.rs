//! Integration: every one of the thirteen algorithms must produce the
//! reference join's match count and checksum on every workload class the
//! paper evaluates — uniform FK, skewed (Zipf), sparse domains, heavy
//! duplicates — across thread counts.

use mmjoin::core::reference::reference_join;
use mmjoin::core::{Algorithm, Join, JoinConfig, JoinResult};
use mmjoin::datagen::{
    gen_build_dense, gen_build_sparse, gen_probe_fk, gen_probe_of_keys, gen_probe_zipf,
};
use mmjoin::util::{Placement, Relation, Tuple};

fn cfg(threads: usize) -> JoinConfig {
    let mut c = JoinConfig::new(threads);
    c.simulate = false;
    c
}

fn run_join(alg: Algorithm, r: &Relation, s: &Relation, c: &JoinConfig) -> JoinResult {
    Join::new(alg)
        .with_config(c.clone())
        .run(r, s)
        .expect("valid plan")
}

fn check_all(r: &Relation, s: &Relation, threads: usize, domain: usize, label: &str) {
    let expect = reference_join(r, s);
    for alg in Algorithm::ALL {
        let mut c = cfg(threads);
        c.key_domain = domain;
        let res = run_join(alg, r, s, &c);
        assert_eq!(
            res.matches,
            expect.count,
            "{label}: {} with {threads} threads: count",
            alg.name()
        );
        assert_eq!(
            res.checksum,
            expect.digest,
            "{label}: {} with {threads} threads: checksum",
            alg.name()
        );
    }
}

#[test]
fn uniform_fk_workload_all_threads() {
    let n = 6_000;
    let placement = Placement::Chunked { parts: 4 };
    let r = gen_build_dense(n, 1, placement);
    let s = gen_probe_fk(n * 5, n, 2, placement);
    for threads in [1, 2, 4, 8] {
        check_all(&r, &s, threads, 0, "uniform");
    }
}

#[test]
fn skewed_zipf_workload() {
    let n = 3_000;
    let placement = Placement::Chunked { parts: 4 };
    let r = gen_build_dense(n, 3, placement);
    for theta in [0.51, 0.99] {
        let s = gen_probe_zipf(15_000, n, theta, 4, placement);
        check_all(&r, &s, 4, 0, &format!("zipf {theta}"));
    }
}

#[test]
fn sparse_domain_workload() {
    let n = 2_000;
    let k = 8;
    let placement = Placement::Chunked { parts: 4 };
    let (r, keys) = gen_build_sparse(n, k * n, 5, placement);
    let s = gen_probe_of_keys(10_000, &keys, 6, placement);
    check_all(&r, &s, 4, k * n, "sparse");
}

#[test]
fn probe_smaller_than_build() {
    // Worst-case-for-hash shape: |S| = |R| and even |S| < |R|.
    let n = 4_000;
    let placement = Placement::Chunked { parts: 2 };
    let r = gen_build_dense(n, 7, placement);
    let s = gen_probe_fk(n / 4, n, 8, placement);
    check_all(&r, &s, 3, 0, "small probe");
}

#[test]
fn single_tuple_relations() {
    let placement = Placement::Interleaved;
    let r = Relation::from_tuples(&[Tuple::new(1, 0)], placement);
    let s = Relation::from_tuples(&[Tuple::new(1, 9), Tuple::new(1, 10)], placement);
    check_all(&r, &s, 4, 0, "single");
}

#[test]
fn probe_misses_everything() {
    // Probe keys beyond the build domain: zero matches everywhere.
    let placement = Placement::Chunked { parts: 2 };
    let r = gen_build_dense(1_000, 9, placement);
    let far: Vec<Tuple> = (0..500).map(|i| Tuple::new(1_000_000 + i, i)).collect();
    let s = Relation::from_tuples(&far, placement);
    for alg in Algorithm::ALL {
        // Array joins need the domain to cover the probe keys.
        let mut c = cfg(2);
        c.key_domain = 1_100_000;
        let res = run_join(alg, &r, &s, &c);
        assert_eq!(res.matches, 0, "{}", alg.name());
    }
}

#[test]
fn radix_bits_sweep_stays_correct() {
    // Partitioned joins must be correct for extreme fanouts.
    let n = 3_000;
    let placement = Placement::Chunked { parts: 4 };
    let r = gen_build_dense(n, 11, placement);
    let s = gen_probe_fk(9_000, n, 12, placement);
    let expect = reference_join(&r, &s);
    for bits in [1u32, 2, 8, 12] {
        for alg in [
            Algorithm::Prb,
            Algorithm::ProIs,
            Algorithm::Cprl,
            Algorithm::Cpra,
        ] {
            let mut c = cfg(4);
            c.radix_bits = Some(bits);
            let res = run_join(alg, &r, &s, &c);
            assert_eq!(res.matches, expect.count, "{} bits={bits}", alg.name());
            assert_eq!(res.checksum, expect.digest, "{} bits={bits}", alg.name());
        }
    }
}

#[test]
fn more_threads_than_tuples() {
    let placement = Placement::Interleaved;
    let r = gen_build_dense(10, 13, placement);
    let s = gen_probe_fk(7, 10, 14, placement);
    check_all(&r, &s, 32, 0, "tiny input, many threads");
}
