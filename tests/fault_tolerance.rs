//! Failpoint-driven fault-tolerance tests (`--features failpoints`).
//!
//! The contract under test: a panic injected into ANY phase of ANY of
//! the thirteen algorithms surfaces as `JoinError::WorkerPanicked` with
//! the right phase label — no deadlock, no abort — and the very next
//! join submitted to the same persistent worker pool completes with the
//! correct checksum (the pool healed).
//!
//! Failpoints are armed thread-locally (`arm_local`), so these tests
//! can run concurrently with every other test sharing the process-wide
//! executor pools without leaking faults into them.
#![cfg(feature = "failpoints")]

use std::time::Duration;

use mmjoin::core::fault::failpoints::{arm_local, FailAction};
use mmjoin::core::reference::reference_join;
use mmjoin::core::{Algorithm, Join, JoinConfig, JoinError};
use mmjoin::util::{Placement, Relation};

const THREADS: usize = 4;

/// Serializes the tests that arm (or could observe) a *process-wide*
/// failpoint on NOPA: global arming is visible to every thread, so the
/// unarmed healing joins of the full-matrix test must not overlap it.
static GLOBAL_ARMING: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialize_global() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_ARMING
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn workload() -> (Relation, Relation) {
    let n = 3_000;
    let r = mmjoin::datagen::gen_build_dense(n, 77, Placement::Chunked { parts: 4 });
    let s = mmjoin::datagen::gen_probe_fk(n * 4, n, 78, Placement::Chunked { parts: 4 });
    (r, s)
}

fn cfg() -> JoinConfig {
    let mut c = JoinConfig::new(THREADS);
    c.simulate = false;
    c.radix_bits = Some(5);
    c
}

fn run(alg: Algorithm, r: &Relation, s: &Relation) -> Result<mmjoin::core::JoinResult, JoinError> {
    Join::new(alg).with_config(cfg()).run(r, s)
}

/// Panic in `phase` of `alg` must yield `WorkerPanicked` naming that
/// phase, and the immediately following join on the same pool must
/// produce the reference checksum.
fn assert_panic_contained(alg: Algorithm, phase: &'static str, r: &Relation, s: &Relation) {
    let expect = reference_join(r, s);
    let name = format!("{}.{phase}", alg.name());
    {
        let _g = arm_local(&name, FailAction::Panic);
        match run(alg, r, s) {
            Err(JoinError::WorkerPanicked {
                phase: got,
                payload,
            }) => {
                assert_eq!(got, phase, "{name}: wrong phase label");
                assert!(
                    payload.contains("failpoint"),
                    "{name}: payload {payload:?} does not mention the failpoint"
                );
            }
            other => panic!("{name}: expected WorkerPanicked, got {other:?}"),
        }
    }
    // Pool healed: the same algorithm immediately succeeds.
    let res = run(alg, r, s).unwrap_or_else(|e| panic!("{name}: join after panic failed: {e}"));
    assert_eq!(res.matches, expect.count, "{name}: wrong count after heal");
    assert_eq!(
        res.checksum, expect.digest,
        "{name}: wrong checksum after heal"
    );
}

/// The acceptance matrix: {partition, build, probe} × {NOP, PRO, CPRL,
/// MWAY} — every named phase of the named algorithms.
#[test]
fn panic_isolated_in_every_phase_of_headline_algorithms() {
    let (r, s) = workload();
    for alg in [
        Algorithm::Nop,
        Algorithm::Pro,
        Algorithm::Cprl,
        Algorithm::Mway,
    ] {
        for &phase in alg.phases() {
            assert_panic_contained(alg, phase, &r, &s);
        }
    }
}

/// Every phase of every one of the thirteen drivers contains an
/// injected panic and heals.
#[test]
fn panic_isolated_in_every_phase_of_all_thirteen() {
    let _serial = serialize_global();
    let (r, s) = workload();
    for alg in Algorithm::ALL {
        for &phase in alg.phases() {
            assert_panic_contained(alg, phase, &r, &s);
        }
    }
}

/// A sleep failpoint plus a short deadline makes the deadline fire
/// deterministically mid-phase (not just at `Duration::ZERO`).
#[test]
fn sleep_failpoint_trips_a_real_deadline() {
    let (r, s) = workload();
    let _g = arm_local("PRO.join", FailAction::Sleep(30));
    let mut c = cfg();
    c.deadline = Some(Duration::from_millis(10));
    match Join::new(Algorithm::Pro).with_config(c).run(&r, &s) {
        Err(JoinError::Timedout {
            phase,
            elapsed,
            partial,
        }) => {
            assert_eq!(phase, "join");
            assert!(elapsed >= Duration::from_millis(10));
            assert!(
                partial.iter().any(|p| p.name == "partition"),
                "partition completed before the deadline"
            );
        }
        other => panic!("expected Timedout, got {other:?}"),
    }
}

/// Process-wide arming (the `MMJOIN_FAILPOINTS` path) works through the
/// public arm/disarm API too.
#[test]
fn global_arming_round_trip() {
    use mmjoin::core::fault::failpoints::{arm, disarm};
    let _serial = serialize_global();
    let (r, s) = workload();
    arm("NOPA.probe", FailAction::Panic);
    let got = run(Algorithm::Nopa, &r, &s);
    disarm("NOPA.probe");
    match got {
        Err(JoinError::WorkerPanicked { phase, .. }) => assert_eq!(phase, "probe"),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let expect = reference_join(&r, &s);
    let res = run(Algorithm::Nopa, &r, &s).expect("join after disarm");
    assert_eq!(res.checksum, expect.digest);
}
