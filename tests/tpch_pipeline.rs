//! Integration: the TPC-H Q19 pipeline end to end — all four pluggable
//! joins and all five morph variants must agree, across thread counts
//! and selectivities.

use mmjoin::tpch::data::{generate_tables, GenParams};
use mmjoin::tpch::morph::run_morph;
use mmjoin::tpch::q19::{reference_q19, run_q19, Q19Join};

fn tables(sel: f64) -> (mmjoin::tpch::PartTable, mmjoin::tpch::LineitemTable) {
    // SF 0.05 = 300k Lineitem rows: the Q19 post-join predicate is very
    // selective (~5e-4 of pre-filtered rows), so smaller SFs can
    // legitimately produce zero matches for an unlucky seed.
    generate_tables(&GenParams {
        scale_factor: 0.05,
        pre_selectivity: sel,
        seed: 0xABCD,
    })
}

#[test]
fn q19_joins_agree_across_threads() {
    let (p, l) = tables(0.0357);
    let expect = reference_q19(&p, &l);
    assert!(expect > 0.0);
    for join in Q19Join::ALL {
        for threads in [1, 2, 8] {
            let res = run_q19(join, &p, &l, threads);
            let rel = (res.revenue - expect).abs() / expect;
            assert!(rel < 1e-6, "{} t={threads}: {}", join.name(), res.revenue);
        }
    }
}

#[test]
fn q19_selectivity_sweep_consistency() {
    for sel in [0.0357, 0.5, 1.0] {
        let (p, l) = tables(sel);
        let expect = reference_q19(&p, &l);
        let nop = run_q19(Q19Join::Nop, &p, &l, 4);
        let cpra = run_q19(Q19Join::Cpra, &p, &l, 4);
        for res in [&nop, &cpra] {
            let rel = (res.revenue - expect).abs() / expect.max(1.0);
            assert!(rel < 1e-6, "sel={sel}");
        }
        // Higher selectivity must feed more rows into the join.
        let frac = nop.filtered_rows as f64 / l.len() as f64;
        assert!((frac - sel).abs() < 0.05, "sel={sel} got {frac}");
    }
}

#[test]
fn morph_chain_consistency() {
    let (p, l) = tables(0.0357);
    let expect = reference_q19(&p, &l);
    for threads in [1, 4] {
        let steps = run_morph(&p, &l, threads);
        assert_eq!(steps.len(), 5);
        // Match counts agree across variants 1-3.
        assert_eq!(steps[0].outcome, steps[1].outcome);
        assert_eq!(steps[1].outcome, steps[2].outcome);
        // Revenue agrees with the reference in variants 4-5.
        for i in [3, 4] {
            let rel = (steps[i].outcome - expect).abs() / expect;
            assert!(rel < 1e-6, "threads={threads} variant {}", i + 1);
        }
    }
}

#[test]
fn q19_matches_microbenchmark_semantics() {
    // The number of pre-filter survivors equals what the micro-benchmark
    // path (morph variant 1's input) sees.
    let (p, l) = tables(0.0357);
    let filtered = (0..l.len()).filter(|&i| l.pre_join(i)).count();
    let res = run_q19(Q19Join::Nopa, &p, &l, 2);
    assert_eq!(res.filtered_rows, filtered);
}
