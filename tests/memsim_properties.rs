//! Property-based tests on the cache/TLB simulator: classic cache
//! invariants that must hold for arbitrary access streams.

use proptest::prelude::*;

use mmjoin::memsim::{Cache, CacheConfig, MemSim, Tlb};
use mmjoin::util::trace::MemTracer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn immediate_reaccess_always_hits(lines in prop::collection::vec(0u64..1024, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(64 * 64, 4));
        for &l in &lines {
            c.access(l);
            prop_assert!(c.access(l), "line {l} missing right after access");
        }
    }

    #[test]
    fn working_set_within_capacity_never_thrashes(
        set_size in 1usize..16,
        rounds in 1usize..20,
    ) {
        // 16 lines capacity (4 sets x 4 ways); any set of distinct lines
        // mapping uniformly cannot exceed per-set associativity if we
        // choose consecutive lines (one per set, round-robin).
        let mut c = Cache::new(CacheConfig::new(16 * 64, 4));
        let lines: Vec<u64> = (0..set_size as u64).collect();
        for &l in &lines {
            c.access(l);
        }
        let misses_before = c.misses();
        for _ in 0..rounds {
            for &l in &lines {
                c.access(l);
            }
        }
        prop_assert_eq!(c.misses(), misses_before, "resident set missed");
    }

    #[test]
    fn miss_count_bounded_by_accesses(lines in prop::collection::vec(0u64..64, 0..500)) {
        let mut c = Cache::new(CacheConfig::new(8 * 64, 2));
        for &l in &lines {
            c.access(l);
        }
        prop_assert_eq!(c.hits() + c.misses(), lines.len() as u64);
        // Distinct lines lower-bound the misses (cold misses).
        let distinct: std::collections::HashSet<u64> = lines.iter().copied().collect();
        prop_assert!(c.misses() >= distinct.len().min(8) as u64);
    }

    #[test]
    fn tlb_sequential_scan_misses_once_per_page(pages in 1usize..50) {
        let mut t = Tlb::new(64, 4096);
        for addr in (0..pages * 4096).step_by(512) {
            t.access(addr);
        }
        prop_assert_eq!(t.misses(), pages as u64);
    }

    #[test]
    fn memsim_counters_are_consistent(
        addrs in prop::collection::vec(0usize..(1 << 20), 1..300),
    ) {
        let mut ms = MemSim::paper_machine(4096, 64);
        for &a in &addrs {
            ms.read(a, 8);
        }
        let c = ms.counters();
        // Every L2 access is an L1 miss; every L3 access is an L2 miss.
        prop_assert_eq!(c.l2_accesses, c.l1_misses);
        prop_assert_eq!(c.l3_accesses, c.l2_misses);
        prop_assert!(c.l3_misses <= c.l3_accesses);
        prop_assert!(c.tlb_accesses >= c.accesses);
    }
}
