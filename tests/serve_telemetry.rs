//! Integration suite for the live service telemetry (DESIGN.md §16):
//! per-tenant rolling SLO percentiles in `stat`, the query flight
//! recorder drained as chrome://tracing events via the `trace` op,
//! Prometheus exposition over both the `metrics` wire op and the
//! optional HTTP endpoint, and the online regression watch — clean on
//! an unperturbed run, flagging a deliberately slowed tenant within
//! one window (the latter under `--features failpoints`).

use std::time::Duration;

use mmjoin::serve::{Client, ServeConfig, Server};
use mmjoin::util::jsonv::Value;

fn client(server: &Server) -> Client {
    let mut c = Client::connect(server.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(120))).unwrap();
    c
}

fn ok(v: &Value) -> bool {
    v.get("ok").and_then(|b| b.as_bool()) == Some(true)
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key)
        .and_then(|n| n.as_num())
        .unwrap_or_else(|| panic!("missing number {key:?} in {v:?}"))
}

fn load_pair(c: &mut Client, build_rows: usize, probe_rows: usize) {
    let v = c
        .request(&format!(
            r#"{{"op":"load","name":"r","rows":{build_rows},"kind":"build","seed":7}}"#
        ))
        .unwrap();
    assert!(ok(&v), "load r failed: {v:?}");
    let v = c
        .request(&format!(
            r#"{{"op":"load","name":"s","rows":{probe_rows},"kind":"probe_fk","domain":{build_rows},"seed":8}}"#
        ))
        .unwrap();
    assert!(ok(&v), "load s failed: {v:?}");
}

/// Fetch the `telemetry` object out of a `stat` round trip.
fn telemetry(c: &mut Client) -> Value {
    let v = c.request(r#"{"op":"stat"}"#).unwrap();
    assert!(ok(&v), "stat failed: {v:?}");
    v.get("stat")
        .and_then(|s| s.get("telemetry"))
        .expect("stat has a telemetry section")
        .clone()
}

#[test]
fn stat_reports_rolling_slo_percentiles_per_tenant() {
    // slo_window_secs 0: windows rotate only via telemetry_tick, so
    // the test controls them deterministically.
    let server = Server::spawn(
        ServeConfig::default()
            .with_runners(2)
            .with_slo_window_secs(0.0),
    )
    .unwrap();
    let mut c = client(&server);
    load_pair(&mut c, 20_000, 80_000);

    for _ in 0..10 {
        let v = c
            .request(r#"{"op":"join","tenant":"alpha","algo":"PRO","build":"r","probe":"s"}"#)
            .unwrap();
        assert!(ok(&v), "join failed: {v:?}");
    }
    // One failed join: unknown relation, still billed to the tenant.
    let v = c
        .request(r#"{"op":"join","tenant":"alpha","algo":"PRO","build":"nope","probe":"s"}"#)
        .unwrap();
    assert!(!ok(&v));

    let tel = telemetry(&mut c);
    let tenants = tel.get("tenants").and_then(|t| t.as_arr()).unwrap();
    let alpha = tenants
        .iter()
        .find(|t| t.get("name").and_then(|n| n.as_str()) == Some("alpha"))
        .expect("tenant alpha tracked");
    assert_eq!(num(alpha, "requests"), 11.0);
    assert_eq!(num(alpha, "errors"), 1.0);
    assert!((num(alpha, "error_rate") - 1.0 / 11.0).abs() < 1e-6);
    let rolling = alpha.get("rolling").expect("rolling SLO view");
    assert_eq!(num(rolling, "count"), 11.0);
    assert!(num(rolling, "p50_ms") > 0.0, "live-window p50 from joins");
    assert!(num(rolling, "p99_ms") >= num(rolling, "p50_ms"));
    assert!(num(rolling, "p999_ms") >= num(rolling, "p99_ms"));
    let total = alpha.get("total").expect("cumulative view");
    assert_eq!(num(total, "count"), 11.0);

    // Rotating moves the live window into history; the rolling view
    // still covers it, the cumulative view is untouched.
    server.telemetry_tick();
    let tel = telemetry(&mut c);
    let tenants = tel.get("tenants").and_then(|t| t.as_arr()).unwrap();
    let alpha = tenants
        .iter()
        .find(|t| t.get("name").and_then(|n| n.as_str()) == Some("alpha"))
        .unwrap();
    assert_eq!(num(alpha.get("rolling").unwrap(), "count"), 11.0);
    assert_eq!(num(alpha.get("rolling").unwrap(), "windows"), 1.0);
    assert_eq!(num(alpha.get("total").unwrap(), "count"), 11.0);
    let overall = tel.get("overall").expect("overall rollup");
    assert_eq!(num(overall, "count"), 11.0);

    server.shutdown();
}

#[test]
fn trace_op_drains_chrome_trace_events() {
    let server = Server::spawn(ServeConfig::default().with_runners(2)).unwrap();
    let mut c = client(&server);
    load_pair(&mut c, 20_000, 80_000);
    for _ in 0..3 {
        let v = c
            .request(r#"{"op":"join","tenant":"tracer","algo":"PRO","build":"r","probe":"s"}"#)
            .unwrap();
        assert!(ok(&v));
    }

    let v = c.request(r#"{"op":"trace","max":100}"#).unwrap();
    assert!(ok(&v), "trace failed: {v:?}");
    assert_eq!(num(&v, "count"), 3.0);
    let events = v.get("events").and_then(|e| e.as_arr()).unwrap();
    // The chrome://tracing loader requires: each event an object with
    // "ph", "pid", "tid", "name"; "X" events also "ts" and "dur".
    let mut complete = 0;
    let mut phase_spans = 0;
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
        assert!(e.get("name").and_then(|n| n.as_str()).is_some());
        assert!(e.get("pid").and_then(|p| p.as_num()).is_some());
        assert!(e.get("tid").and_then(|t| t.as_num()).is_some());
        match ph {
            "M" => {}
            "X" => {
                assert!(num(e, "ts") >= 0.0);
                assert!(num(e, "dur") >= 0.0);
                match e.get("cat").and_then(|c| c.as_str()) {
                    Some("join") => {
                        complete += 1;
                        let args = e.get("args").expect("join event args");
                        assert_eq!(args.get("tenant").and_then(|t| t.as_str()), Some("tracer"));
                        assert!(args.get("queue_ms").and_then(|q| q.as_num()).is_some());
                        assert!(args.get("queue_depth").and_then(|q| q.as_num()).is_some());
                    }
                    Some("phase") => phase_spans += 1,
                    other => panic!("unexpected X category {other:?}"),
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(complete, 3, "one complete event per query");
    assert!(phase_spans > 0, "per-phase child spans present");

    // The default drains the ring: a second trace sees nothing.
    let v = c.request(r#"{"op":"trace"}"#).unwrap();
    assert!(ok(&v));
    assert_eq!(num(&v, "count"), 0.0);

    server.shutdown();
}

/// Loose Prometheus text-format check: every line is a comment or
/// `name{labels} value` with a float value.
fn assert_prometheus_parses(text: &str) {
    assert!(text.contains("# TYPE"), "exposition has TYPE lines");
    assert!(
        text.contains("mmjoin_requests_total"),
        "request counter exported"
    );
    assert!(
        text.contains("mmjoin_request_latency_seconds"),
        "latency summary exported in seconds"
    );
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparsable sample value in {line:?}"
        );
        let bare = name_part.split('{').next().unwrap();
        assert!(
            !bare.is_empty()
                && bare
                    .chars()
                    .all(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == ':'),
            "bad metric name in {line:?}"
        );
    }
}

#[test]
fn metrics_exposition_over_wire_and_http() {
    let server = Server::spawn(
        ServeConfig::default()
            .with_runners(2)
            .with_metrics_addr("127.0.0.1:0"),
    )
    .unwrap();
    let mut c = client(&server);
    load_pair(&mut c, 20_000, 80_000);
    for _ in 0..5 {
        let v = c
            .request(r#"{"op":"join","tenant":"m","algo":"PRO","build":"r","probe":"s"}"#)
            .unwrap();
        assert!(ok(&v));
    }

    // Wire op.
    let text = c.metrics_text().expect("metrics op");
    assert_prometheus_parses(&text);

    // HTTP scrape endpoint.
    use std::io::{Read, Write};
    let addr = server.metrics_addr().expect("metrics endpoint bound");
    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = String::new();
    sock.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.0 200"), "bad status: {resp:?}");
    let body = resp.split("\r\n\r\n").nth(1).expect("HTTP body");
    assert_prometheus_parses(body);

    server.shutdown();
}

#[test]
fn regression_watch_stays_clean_on_steady_load() {
    let server = Server::spawn(
        ServeConfig::default()
            .with_runners(2)
            .with_slo_window_secs(0.0),
    )
    .unwrap();
    let mut c = client(&server);
    load_pair(&mut c, 20_000, 80_000);

    // Three windows of statistically identical load.
    for _ in 0..3 {
        for _ in 0..12 {
            let v = c
                .request(r#"{"op":"join","tenant":"steady","algo":"PRO","build":"r","probe":"s"}"#)
                .unwrap();
            assert!(ok(&v));
        }
        server.telemetry_tick();
    }

    let tel = telemetry(&mut c);
    let watch = tel.get("watch").expect("watch verdict");
    assert_eq!(
        watch.get("status").and_then(|s| s.as_str()),
        Some("clean"),
        "steady load must not flag: {watch:?}"
    );
    assert_eq!(num(watch, "rotations"), 3.0);
    assert_eq!(num(watch, "flags_total"), 0.0);

    server.shutdown();
}

/// A tenant slowed ≥4x by an armed failpoint must be flagged by the
/// regression watch within one window; disarming clears the next pass.
#[cfg(feature = "failpoints")]
#[test]
fn regression_watch_flags_failpoint_slowed_tenant_within_one_window() {
    use mmjoin::core::fault::failpoints::{arm, disarm, FailAction};

    let server = Server::spawn(
        ServeConfig::default()
            .with_runners(1)
            .with_slo_window_secs(0.0),
    )
    .unwrap();
    let mut c = client(&server);
    // Tiny relations: the NOP baseline is sub-millisecond, so a
    // per-morsel sleep dominates by far more than the 1.5x gate.
    load_pair(&mut c, 2_000, 8_000);

    let join =
        r#"{"op":"join","tenant":"victim","algo":"NOP","build":"r","probe":"s","cache":false}"#;
    // Two baseline windows (the watch needs ≥8 samples per side).
    for _ in 0..2 {
        for _ in 0..12 {
            let v = c.request(join).unwrap();
            assert!(ok(&v));
        }
        server.telemetry_tick();
    }
    let tel_pre = telemetry(&mut c);
    assert_eq!(
        tel_pre
            .get("watch")
            .and_then(|w| w.get("status"))
            .and_then(|s| s.as_str()),
        Some("clean"),
        "baseline windows must be clean"
    );

    // Perturb: every NOP probe morsel sleeps 10ms, process-wide (the
    // server's runner threads resolve process-global failpoints).
    arm("NOP.probe", FailAction::Sleep(10));
    for _ in 0..12 {
        let v = c.request(join).unwrap();
        assert!(ok(&v), "perturbed join still succeeds: {v:?}");
    }
    disarm("NOP.probe");
    server.telemetry_tick();

    let tel = telemetry(&mut c);
    let watch = tel.get("watch").expect("watch verdict");
    assert_eq!(
        watch.get("status").and_then(|s| s.as_str()),
        Some("regressed"),
        "4x-slowed tenant must flag within one window: {watch:?}"
    );
    let flags = watch.get("flags").and_then(|f| f.as_arr()).unwrap();
    let flag = flags
        .iter()
        .find(|f| f.get("tenant").and_then(|t| t.as_str()) == Some("victim"))
        .expect("victim tenant flagged");
    assert!(
        num(flag, "ratio") >= 4.0,
        "median shift should dwarf the 1.5x gate: {flag:?}"
    );
    assert!(num(flag, "current_p50_ms") > num(flag, "baseline_p50_ms"));

    server.shutdown();
}
