//! `mmjoin` — a Rust reproduction of Schuh, Chen & Dittrich,
//! *"An Experimental Comparison of Thirteen Relational Equi-Joins in Main
//! Memory"* (SIGMOD 2016).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — the thirteen join algorithms, the [`core::Join`] plan
//!   builder, and the persistent morsel executor they run on.
//! * [`datagen`] — workload generators (dense PK/FK, Zipf, sparse).
//! * [`hashtable`] — chained / linear / concise / array tables.
//! * [`partition`] — radix partitioning, SWWCB, task scheduling, Eq. (1).
//! * [`sort`] — sorting networks and multiway merging (MWAY substrate).
//! * [`numamodel`] — the simulated NUMA machine and cost model.
//! * [`memsim`] — the trace-driven cache/TLB simulator (Table 4).
//! * [`tpch`] — the column-store TPC-H Q19 substrate.
//! * [`util`] — tuples, aligned buffers, RNG, checksums.
//! * [`serve`] — the async multi-tenant join service (`mmjoin serve`).
//!
//! Embedders that just want to run joins should import [`prelude`] —
//! the consolidated public API (also available as
//! `mmjoin_core::prelude` for crates that don't want the whole
//! workspace).
//!
//! # Quickstart
//!
//! ```
//! use mmjoin::core::{Algorithm, Join};
//! use mmjoin::datagen::{gen_build_dense, gen_probe_fk};
//! use mmjoin::util::Placement;
//!
//! let placement = Placement::Chunked { parts: 4 };
//! let r = gen_build_dense(100_000, 42, placement);
//! let s = gen_probe_fk(1_000_000, 100_000, 43, placement);
//!
//! let result = Join::new(Algorithm::Cpra)
//!     .with_threads(4)
//!     .run(&r, &s)
//!     .expect("valid plan");
//! assert_eq!(result.matches, 1_000_000);
//! println!(
//!     "CPRA: {:.0} Mtps on the simulated 4-socket machine",
//!     result.sim_throughput_mtps(r.len(), s.len())
//! );
//! ```

pub use mmjoin_core as core;
pub use mmjoin_core::prelude;
pub use mmjoin_datagen as datagen;
pub use mmjoin_hashtable as hashtable;
pub use mmjoin_memsim as memsim;
pub use mmjoin_numamodel as numamodel;
pub use mmjoin_partition as partition;
pub use mmjoin_serve as serve;
pub use mmjoin_sort as sort;
pub use mmjoin_tpch as tpch;
pub use mmjoin_util as util;
