//! `mmjoin` — command-line front end to the join library.
//!
//! ```text
//! mmjoin join  --algo CPRL --build 1000000 --probe 10000000 [--threads N]
//!              [--zipf THETA] [--bits B] [--skew-handling] [--ledger FILE.jsonl]
//! mmjoin race  --build 1000000 --probe 10000000     # all 13, leaderboard
//! mmjoin tpch  --sf 0.2 [--threads N]               # Q19 with 4 joins
//! mmjoin serve --addr 127.0.0.1:7788                # multi-tenant service
//! ```

use mmjoin::core::{observe, Algorithm, Join, JoinConfig, ProfileConfig};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk, gen_probe_zipf};
use mmjoin::util::Placement;

struct Args {
    map: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut map = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    map.push((name.to_string(), argv[i + 1].clone()));
                    i += 2;
                } else {
                    flags.push(name.to_string());
                    i += 1;
                }
            } else {
                flags.push(a.clone());
                i += 1;
            }
        }
        Args { map, flags }
    }

    /// Reject anything outside the command's accepted options.
    fn check_known(&self, options: &[&str], flags: &[&str]) {
        for (k, _) in &self.map {
            if !options.contains(&k.as_str()) && !flags.contains(&k.as_str()) {
                eprintln!("unknown option --{k}");
                usage();
            }
        }
        for f in &self.flags {
            if flags.contains(&f.as_str()) {
                continue;
            }
            if options.contains(&f.as_str()) {
                // `--bits` at the end of the line, with no value.
                eprintln!("option --{f} needs a value");
            } else {
                eprintln!("unexpected argument {f:?}");
            }
            usage();
        }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get_str(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value {v:?} for --{name}");
                usage();
            }),
        }
    }

    fn get_str(&self, name: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

fn usage() -> ! {
    eprintln!("usage: mmjoin <join|race|tpch|serve> [options]");
    eprintln!("  join --algo NAME --build N --probe N [--threads N] [--zipf T] [--bits B] [--skew-handling]");
    eprintln!("       [--deadline-ms MS] [--mem-limit-mb MB] [--spill-dir DIR] [--no-spill]");
    eprintln!(
        "       [--alloc POLICY] [--profile] [--trace-out FILE.json] [--metrics-out FILE.json]"
    );
    eprintln!("       [--ledger FILE.jsonl]");
    eprintln!("  race --build N --probe N [--threads N] [--zipf T] [--bits B] [--skew-handling]");
    eprintln!("       [--deadline-ms MS] [--mem-limit-mb MB] [--spill-dir DIR] [--no-spill]");
    eprintln!("       [--alloc POLICY]");
    eprintln!("  tpch --sf F [--threads N]");
    eprintln!("  serve [--addr HOST:PORT] [--runners N] [--join-threads N]");
    eprintln!("        [--global-budget-mb MB] [--tenant-budget-mb MB] [--tenant NAME:MB ...]");
    eprintln!("        [--queue-depth N] [--cache-mb MB] [--spill-dir DIR] [--stat-secs S]");
    eprintln!("        [--metrics-addr HOST:PORT] [--slo-window-secs S]");
    eprintln!("        [--slow-query-ms MS] [--slow-query-log FILE]");
    eprintln!(
        "alloc policies: portable | mapped | thp | hugetlb, optionally \
         +firsttouch | +interleave | +bind:N (also via MMJOIN_ALLOC)"
    );
    eprintln!(
        "algorithms: {}",
        Algorithm::WITH_EXTENSIONS.map(|a| a.name()).join(" ")
    );
    std::process::exit(2);
}

fn workload(args: &Args) -> (mmjoin::util::Relation, mmjoin::util::Relation, f64) {
    let build: usize = args.get("build", 1_000_000);
    let probe: usize = args.get("probe", build * 10);
    let threads: usize = args.get("threads", 4);
    let theta: f64 = args.get("zipf", 0.0);
    if !(0.0..1.0).contains(&theta) {
        eprintln!("invalid value {theta} for --zipf: must be in [0, 1)");
        std::process::exit(2);
    }
    let placement = Placement::Chunked { parts: threads };
    let r = gen_build_dense(build, 42, placement);
    let s = if theta > 0.0 {
        gen_probe_zipf(probe, build, theta, 43, placement)
    } else {
        gen_probe_fk(probe, build, 43, placement)
    };
    (r, s, theta)
}

fn config(args: &Args, theta: f64) -> JoinConfig {
    let mut builder = JoinConfig::builder()
        .with_threads(args.get("threads", 4))
        .with_zipf(theta)
        .with_skew_handling(args.has("skew-handling"));
    if args.get_str("bits").is_some() {
        builder = builder.with_radix_bits(args.get("bits", 0));
    }
    if args.get_str("deadline-ms").is_some() {
        let ms: u64 = args.get("deadline-ms", 0);
        builder = builder.with_deadline(std::time::Duration::from_millis(ms));
    }
    if args.get_str("mem-limit-mb").is_some() {
        let mb: usize = args.get("mem-limit-mb", 0);
        builder = builder.with_mem_limit(mb.saturating_mul(1024 * 1024));
    }
    if let Some(dir) = args.get_str("spill-dir") {
        builder = builder.with_spill_dir(dir);
    }
    if args.has("no-spill") {
        builder = builder.with_spill(false);
    }
    if let Some(policy) = args.get_str("alloc") {
        match mmjoin::util::mem::AllocPolicy::parse(policy) {
            Ok(p) => builder = builder.with_alloc_policy(p),
            Err(e) => {
                eprintln!("invalid value for --alloc: {e}");
                usage();
            }
        }
    }
    // --trace-out / --metrics-out are pointless without spans, so either
    // one implies --profile.
    if args.has("profile")
        || args.get_str("trace-out").is_some()
        || args.get_str("metrics-out").is_some()
    {
        builder = builder.with_profile(ProfileConfig::on());
    }
    builder.build().unwrap_or_else(|e| {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let cmd = argv[0].as_str();
    let args = Args::parse(&argv[1..]);
    match cmd {
        "join" => {
            args.check_known(
                &[
                    "algo",
                    "build",
                    "probe",
                    "threads",
                    "zipf",
                    "bits",
                    "deadline-ms",
                    "mem-limit-mb",
                    "spill-dir",
                    "alloc",
                    "trace-out",
                    "metrics-out",
                    "ledger",
                ],
                &["skew-handling", "profile", "no-spill"],
            );
            let Some(name) = args.get_str("algo") else {
                eprintln!("missing required option --algo");
                usage()
            };
            let alg = Algorithm::parse(name).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            });
            let (r, s, theta) = workload(&args);
            let cfg = config(&args, theta);
            let res = Join::new(alg)
                .with_config(cfg.clone())
                .run(&r, &s)
                .unwrap_or_else(|e| {
                    eprintln!("join failed: {e}");
                    std::process::exit(1);
                });
            println!(
                "{}: |R|={} |S|={} threads={}",
                alg.name(),
                r.len(),
                s.len(),
                cfg.threads
            );
            for p in &res.phases {
                println!(
                    "  {:<10} wall {:>9.2} ms   sim({} thr) {:>9.2} ms",
                    p.name,
                    p.wall.as_secs_f64() * 1e3,
                    cfg.sim_threads(),
                    p.sim_seconds * 1e3
                );
                if cfg.profile.enabled {
                    let t = p.counter_totals();
                    let fmt = |v: Option<u64>| match v {
                        Some(x) => format!("{x}"),
                        None => "n/a".to_string(),
                    };
                    println!(
                        "             tasks {}  steals {}  cycles {}  instr {}  LLC-miss {}  dTLB-miss {}",
                        p.exec.tasks,
                        p.exec.steals,
                        fmt(t.cycles),
                        fmt(t.instructions),
                        fmt(t.llc_misses),
                        fmt(t.dtlb_misses)
                    );
                }
            }
            println!(
                "  total      wall {:>9.2} ms   matches {}   wall throughput {:.0} Mtps",
                res.total_wall().as_secs_f64() * 1e3,
                res.matches,
                (r.len() + s.len()) as f64 / res.total_wall().as_secs_f64() / 1e6
            );
            if let Some(bits) = res.radix_bits {
                println!("  radix bits: {bits}");
            }
            let alloc = res.alloc_totals();
            if alloc.mapped_blocks > 0 || alloc.pool_hits > 0 || alloc.degraded() {
                println!(
                    "  alloc [{}]: {} blocks mapped ({:.1} MiB), {} pool hits, \
                     degraded page/numa/heap {}/{}/{}",
                    mmjoin::util::mem::policy_name(),
                    alloc.mapped_blocks,
                    alloc.mapped_bytes as f64 / (1024.0 * 1024.0),
                    alloc.pool_hits,
                    alloc.degraded_page,
                    alloc.degraded_numa,
                    alloc.heap_fallback
                );
            }
            let results = [res];
            if let Some(path) = args.get_str("trace-out") {
                let trace = observe::chrome_trace(&results);
                std::fs::write(path, trace).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!("  trace written to {path} (open in chrome://tracing)");
            }
            if let Some(path) = args.get_str("metrics-out") {
                let metrics = observe::metrics(&results, None);
                std::fs::write(path, metrics).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!("  metrics written to {path}");
            }
            if let Some(path) = args.get_str("ledger") {
                let samples = vec![mmjoin_bench::ledger::SampleSet {
                    algorithm: alg.name().to_string(),
                    workload: format!("cli-b{}-s{}-z{theta}", r.len(), s.len()),
                    kernel_mode: mmjoin_bench::ledger::kernel_mode_name(),
                    secs: vec![results[0].total_wall().as_secs_f64()],
                }];
                let entry = mmjoin_bench::ledger::Entry::stamped("cli", cfg.threads, samples);
                match mmjoin_bench::ledger::append(std::path::Path::new(path), &entry) {
                    Ok(()) => println!("  ledger: appended {} to {path}", entry.describe()),
                    Err(e) => {
                        eprintln!("cannot append to ledger {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "race" => {
            args.check_known(
                &[
                    "build",
                    "probe",
                    "threads",
                    "zipf",
                    "bits",
                    "deadline-ms",
                    "mem-limit-mb",
                    "spill-dir",
                    "alloc",
                ],
                &["skew-handling", "no-spill"],
            );
            let (r, s, theta) = workload(&args);
            let cfg = config(&args, theta);
            // A race is a sweep: one algorithm blowing its deadline or
            // budget (or panicking) drops out of the leaderboard instead
            // of killing the race.
            let mut rows: Vec<(&str, f64, u64)> = Algorithm::WITH_EXTENSIONS
                .iter()
                .filter_map(
                    |&alg| match Join::new(alg).with_config(cfg.clone()).run(&r, &s) {
                        Ok(res) => Some((
                            alg.name(),
                            res.total_wall().as_secs_f64() * 1e3,
                            res.matches,
                        )),
                        Err(e) => {
                            eprintln!("{}: {e}", alg.name());
                            None
                        }
                    },
                )
                .collect();
            rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            println!(
                "|R|={} |S|={} threads={} (host wall time)",
                r.len(),
                s.len(),
                cfg.threads
            );
            for (i, (name, ms, matches)) in rows.iter().enumerate() {
                println!("{:>2}. {name:<7} {ms:>9.2} ms  ({matches} matches)", i + 1);
            }
        }
        "tpch" => {
            args.check_known(&["sf", "threads"], &[]);
            let sf: f64 = args.get("sf", 0.1);
            let threads: usize = args.get("threads", 4);
            let (p, l) = mmjoin::tpch::generate_tables(&mmjoin::tpch::GenParams {
                scale_factor: sf,
                pre_selectivity: 0.0357,
                seed: 0x9119,
            });
            println!(
                "TPC-H Q19 @ SF {sf}: Part {} rows, Lineitem {} rows",
                p.len(),
                l.len()
            );
            for join in mmjoin::tpch::q19::Q19Join::ALL {
                let res = mmjoin::tpch::run_q19(join, &p, &l, threads);
                println!(
                    "  {:<5} total {:>8.1} ms (build/part {:>7.1}, probe/join {:>7.1})  revenue {:.2}",
                    join.name(),
                    res.total_wall().as_secs_f64() * 1e3,
                    res.build_wall.as_secs_f64() * 1e3,
                    res.probe_wall.as_secs_f64() * 1e3,
                    res.revenue
                );
            }
        }
        "serve" => {
            args.check_known(
                &[
                    "addr",
                    "runners",
                    "join-threads",
                    "global-budget-mb",
                    "tenant-budget-mb",
                    "tenant",
                    "queue-depth",
                    "cache-mb",
                    "spill-dir",
                    "stat-secs",
                    "metrics-addr",
                    "slo-window-secs",
                    "slow-query-ms",
                    "slow-query-log",
                ],
                &[],
            );
            let mib = 1024 * 1024;
            let mut cfg = mmjoin::serve::ServeConfig::default();
            if let Some(addr) = args.get_str("addr") {
                cfg = cfg.with_addr(addr);
            }
            if args.get_str("runners").is_some() {
                cfg = cfg.with_runners(args.get("runners", 0));
            }
            if args.get_str("join-threads").is_some() {
                cfg = cfg.with_join_threads(args.get("join-threads", 0));
            }
            if args.get_str("global-budget-mb").is_some() {
                let mb: usize = args.get("global-budget-mb", 0);
                cfg = cfg.with_global_budget(mb.saturating_mul(mib));
            }
            if args.get_str("tenant-budget-mb").is_some() {
                let mb: usize = args.get("tenant-budget-mb", 0);
                cfg = cfg.with_default_tenant_budget(mb.saturating_mul(mib));
            }
            if args.get_str("queue-depth").is_some() {
                cfg = cfg.with_queue_depth(args.get("queue-depth", 0));
            }
            if args.get_str("cache-mb").is_some() {
                let mb: usize = args.get("cache-mb", 0);
                cfg = cfg.with_cache_bytes(mb.saturating_mul(mib));
            }
            if let Some(dir) = args.get_str("spill-dir") {
                cfg = cfg.with_spill_dir(dir);
            }
            if let Some(addr) = args.get_str("metrics-addr") {
                cfg = cfg.with_metrics_addr(addr);
            }
            if args.get_str("slo-window-secs").is_some() {
                cfg = cfg.with_slo_window_secs(args.get("slo-window-secs", 0.0));
            }
            if args.get_str("slow-query-ms").is_some() {
                cfg = cfg.with_slow_query_ms(args.get("slow-query-ms", 0.0));
            }
            if let Some(path) = args.get_str("slow-query-log") {
                cfg = cfg.with_slow_query_log(path);
            }
            // --tenant NAME:MB pins a per-tenant budget; repeatable.
            for (k, v) in &args.map {
                if k != "tenant" {
                    continue;
                }
                let Some((name, mb)) = v.split_once(':') else {
                    eprintln!("invalid value {v:?} for --tenant: expected NAME:MB");
                    usage();
                };
                let Ok(mb) = mb.parse::<usize>() else {
                    eprintln!("invalid value {v:?} for --tenant: expected NAME:MB");
                    usage();
                };
                cfg = cfg.with_tenant_budget(name, mb.saturating_mul(mib));
            }
            let server = mmjoin::serve::Server::spawn(cfg).unwrap_or_else(|e| {
                eprintln!("cannot start server: {e}");
                std::process::exit(1);
            });
            println!("mmjoin-serve listening on {}", server.addr());
            if let Some(m) = server.metrics_addr() {
                println!("mmjoin-serve metrics on http://{m}/metrics");
            }
            // No portable signal handling without libc: the server runs
            // until the process is killed. Optionally print a stat line
            // on an interval so operators can watch it breathe.
            let stat_secs: u64 = args.get("stat-secs", 0);
            loop {
                std::thread::sleep(std::time::Duration::from_secs(if stat_secs > 0 {
                    stat_secs
                } else {
                    3600
                }));
                if stat_secs > 0 {
                    println!("{}", server.stat_json());
                }
            }
        }
        _ => usage(),
    }
}
